"""Section 5.3's efficiency claim: GEF vs. SHAP-as-a-global-explainer.

"The computation of the SHAP values for a set of points depends on the
size of the set under investigation, while with GEF the training time of
the explanation only depends on the number of feature thresholds used by
the forest."

We time (i) one full GEF run and (ii) SHAP global aggregation for growing
instance-set sizes, and verify the scaling asymmetry: SHAP's cost grows
linearly with the number of explained instances while GEF's one-off cost
is flat, so past a crossover GEF is cheaper — *and* GEF's output is
already a global model, whereas SHAP needs its local values re-aggregated.
"""

import time

import numpy as np

from repro.core import GEF
from repro.viz import export_series
from repro.xai import ShapGlobalExplainer

from _report import artifact_path, header, report

SHAP_SIZES = (10, 20, 40, 80)


def test_efficiency_gef_vs_shap(benchmark, superconductivity, superconductivity_shap_forest):
    data = superconductivity
    forest = superconductivity_shap_forest

    gef = GEF(
        n_univariate=7,
        n_interactions=0,
        sampling_strategy="equi-size",
        k_points=400,
        n_samples=15_000,
        n_splines=12,
        random_state=0,
    )

    start = time.perf_counter()
    explanation = benchmark.pedantic(
        lambda: gef.explain(forest), rounds=1, iterations=1
    )
    gef_seconds = time.perf_counter() - start

    shap = ShapGlobalExplainer(forest)
    shap_seconds = []
    for size in SHAP_SIZES:
        start = time.perf_counter()
        shap.explain(data.X_test[:size])
        shap_seconds.append(time.perf_counter() - start)

    header("Section 5.3 — efficiency: GEF (one-off) vs SHAP global (per point)")
    report(f"GEF full pipeline (D* size {gef.config.n_samples}): "
           f"{gef_seconds:.2f} s  -> a complete global model "
           f"(fidelity R2 = {explanation.fidelity['r2']:.3f})")
    report(f"{'instances':>10s} {'SHAP seconds':>13s} {'sec/instance':>13s}")
    for size, seconds in zip(SHAP_SIZES, shap_seconds):
        report(f"{size:>10d} {seconds:>13.2f} {seconds / size:>13.4f}")
    per_instance = shap_seconds[-1] / SHAP_SIZES[-1]
    crossover = gef_seconds / per_instance
    report(f"crossover: explaining more than ~{crossover:.0f} instances with "
           f"SHAP costs more than the entire GEF pipeline")
    export_series(
        artifact_path("efficiency_gef_vs_shap.csv"),
        {"instances": np.asarray(SHAP_SIZES, dtype=float),
         "shap_seconds": np.asarray(shap_seconds),
         "gef_seconds_total": np.full(len(SHAP_SIZES), gef_seconds)},
    )

    # --- reproduction checks ---
    # 1. SHAP's cost grows roughly linearly with the instance count.
    ratio = shap_seconds[-1] / max(shap_seconds[0], 1e-9)
    size_ratio = SHAP_SIZES[-1] / SHAP_SIZES[0]
    assert ratio > 0.4 * size_ratio, "SHAP cost did not scale with instances"
    # 2. There is a finite crossover: a dataset size beyond which one GEF
    #    run is cheaper than SHAP'ing every instance.
    assert np.isfinite(crossover) and crossover > 0
    assert crossover < len(data.X_train), (
        "GEF should beat per-instance SHAP well before dataset size"
    )

    benchmark.extra_info["gef_seconds"] = gef_seconds
    benchmark.extra_info["shap_sec_per_instance"] = per_instance
    benchmark.extra_info["crossover_instances"] = crossover
