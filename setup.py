"""Setup shim: enables legacy editable installs in offline environments
(the sandbox lacks the `wheel` package required by PEP 517 editable builds).
All project metadata lives in pyproject.toml."""

from setuptools import setup

setup()
