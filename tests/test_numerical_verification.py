"""Closed-form cross-checks of the numerical core.

Each test verifies an implementation against an analytically known result,
independent of any other code in this repository.
"""

import numpy as np
import pytest

from repro.forest import LEAF, Tree
from repro.gam import GAM, LinearTerm, SplineTerm
from repro.xai import tree_shap_values


class TestGamVersusClosedForm:
    def test_linear_gam_equals_ols(self):
        """A GAM of LinearTerms with ~zero ridge solves ordinary LS."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        beta_true = np.array([1.5, -2.0, 0.5])
        y = X @ beta_true + 0.7 + rng.normal(0, 0.1, 500)

        gam = GAM([LinearTerm(0), LinearTerm(1), LinearTerm(2)], lam=0.0)
        gam.fit(X, y)

        design = np.column_stack([np.ones(500), X])
        beta_ols, *_ = np.linalg.lstsq(design, y, rcond=None)
        pred_ols = design @ beta_ols
        np.testing.assert_allclose(gam.predict(X), pred_ols, atol=1e-6)

    def test_gcv_formula_spot_check(self):
        """GCV == n * RSS / (n - edof)^2, recomputed by hand."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (400, 1))
        y = np.sin(4 * X[:, 0]) + rng.normal(0, 0.1, 400)
        gam = GAM([SplineTerm(0, 10)], lam=1.0).fit(X, y)
        n = 400
        rss = float(np.sum((y - gam.predict(X)) ** 2))
        edof = gam.statistics_["edof"]
        manual_gcv = n * rss / (n - edof) ** 2
        assert gam.statistics_["GCV"] == pytest.approx(manual_gcv, rel=1e-6)

    def test_edof_bounds(self):
        """0 < edof <= number of coefficients, shrinking with lambda."""
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, (500, 1))
        y = np.sin(8 * X[:, 0]) + rng.normal(0, 0.1, 500)
        edofs = []
        for lam in (1e-3, 1.0, 1e3):
            gam = GAM([SplineTerm(0, 12)], lam=lam).fit(X, y)
            edofs.append(gam.statistics_["edof"])
            assert 0 < edofs[-1] <= gam.n_coefs
        assert edofs[0] > edofs[1] > edofs[2]

    def test_fitted_spline_is_continuous(self):
        """Cubic B-splines: the fitted curve has no jumps (C^2 inside)."""
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (2000, 1))
        y = np.abs(X[:, 0] - 0.5) + rng.normal(0, 0.02, 2000)
        gam = GAM([SplineTerm(0, 14)], lam=0.1).fit(X, y)
        grid = np.linspace(0.01, 0.99, 2000)
        curve = gam.partial_dependence(1, grid)
        max_jump = np.abs(np.diff(curve)).max()
        assert max_jump < 0.01  # ~ slope * grid step, no discontinuity


class TestShapClosedForm:
    def test_stump_shapley_values(self):
        """For a single split on x0, phi_0 = f(x) - E[f]; others zero."""
        tree = Tree(
            feature=np.array([0, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.5, 0.0, 0.0]),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, 2.0, 10.0]),
            gain=np.array([1.0, 0.0, 0.0]),
            n_samples=np.array([10, 3, 7], dtype=np.int64),
        )
        expected_value = (3 * 2.0 + 7 * 10.0) / 10  # 7.6
        for x0, f_x in ((0.2, 2.0), (0.9, 10.0)):
            phi = tree_shap_values(tree, np.array([x0, 0.0, 0.0]), 3)
            assert phi[0] == pytest.approx(f_x - expected_value)
            assert phi[1] == pytest.approx(0.0)
            assert phi[2] == pytest.approx(0.0)

    def test_two_feature_symmetric_tree(self):
        """x0 and x1 fully symmetric: equal attributions by symmetry."""
        tree = Tree(
            feature=np.array([0, 1, 1, LEAF, LEAF, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.5, 0.5, 0.5, 0, 0, 0, 0]),
            left=np.array([1, 3, 5, -1, -1, -1, -1], dtype=np.int32),
            right=np.array([2, 4, 6, -1, -1, -1, -1], dtype=np.int32),
            value=np.array([0, 0, 0, 0.0, 1.0, 1.0, 2.0]),
            gain=np.ones(7),
            n_samples=np.array([8, 4, 4, 2, 2, 2, 2], dtype=np.int64),
        )
        # f(x) = 1[x0>.5] + 1[x1>.5]: an additive symmetric function.
        phi = tree_shap_values(tree, np.array([0.9, 0.9]), 2)
        assert phi[0] == pytest.approx(phi[1])
        assert phi.sum() == pytest.approx(2.0 - 1.0)  # f(x) - E[f] = 2 - 1

    def test_dummy_feature_exact_zero(self):
        """A feature absent from the tree receives exactly zero."""
        tree = Tree(
            feature=np.array([0, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.0, 0.0, 0.0]),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, -1.0, 1.0]),
            gain=np.array([1.0, 0.0, 0.0]),
            n_samples=np.array([4, 2, 2], dtype=np.int64),
        )
        phi = tree_shap_values(tree, np.array([1.0, 123.0]), 2)
        assert phi[1] == 0.0


class TestKnownDistributionFacts:
    def test_kde_matches_normal_density_at_mode(self):
        from repro.metrics import gaussian_kde_1d

        rng = np.random.default_rng(4)
        samples = rng.normal(0, 1, 20_000)
        density = gaussian_kde_1d(samples, np.array([0.0]))[0]
        assert density == pytest.approx(1 / np.sqrt(2 * np.pi), rel=0.05)

    def test_roc_auc_of_shifted_normals(self):
        """AUC of N(0,1) vs N(d,1) equals Phi(d / sqrt(2))."""
        from scipy.special import ndtr

        from repro.metrics import roc_auc

        rng = np.random.default_rng(5)
        d = 1.0
        neg = rng.normal(0, 1, 30_000)
        pos = rng.normal(d, 1, 30_000)
        y = np.concatenate([np.zeros(30_000), np.ones(30_000)])
        scores = np.concatenate([neg, pos])
        expected = float(ndtr(d / np.sqrt(2)))
        assert roc_auc(y, scores) == pytest.approx(expected, abs=0.01)
