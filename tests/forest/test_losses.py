"""Tests for boosting losses: gradients, hessians, init scores."""

import numpy as np
import pytest

from repro.forest import LogisticLoss, SquaredLoss, get_loss, sigmoid


def numeric_gradient(loss, y, raw, eps=1e-6):
    """Central-difference derivative of the summed loss w.r.t. raw scores."""
    grad = np.empty_like(raw)
    for i in range(len(raw)):
        up, down = raw.copy(), raw.copy()
        up[i] += eps
        down[i] -= eps
        grad[i] = (loss.loss(y, up) - loss.loss(y, down)) * len(y) / (2 * eps)
    return grad


class TestSquaredLoss:
    def test_init_score_is_mean(self):
        y = np.array([1.0, 2.0, 6.0])
        assert SquaredLoss().init_score(y) == pytest.approx(3.0)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=10)
        raw = rng.normal(size=10)
        loss = SquaredLoss()
        grad, hess = loss.gradient_hessian(y, raw)
        np.testing.assert_allclose(grad, numeric_gradient(loss, y, raw), atol=1e-5)
        np.testing.assert_allclose(hess, 1.0)

    def test_identity_prediction(self):
        raw = np.array([1.0, -2.0])
        np.testing.assert_array_equal(SquaredLoss().raw_to_prediction(raw), raw)


class TestLogisticLoss:
    def test_init_score_is_log_odds(self):
        y = np.array([1.0, 1.0, 1.0, 0.0])
        expected = np.log(0.75 / 0.25)
        assert LogisticLoss().init_score(y) == pytest.approx(expected)

    def test_init_score_degenerate_labels(self):
        # All-positive labels must not produce infinities.
        score = LogisticLoss().init_score(np.ones(5))
        assert np.isfinite(score)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        y = (rng.uniform(size=10) < 0.5).astype(float)
        raw = rng.normal(size=10)
        loss = LogisticLoss()
        grad, _ = loss.gradient_hessian(y, raw)
        np.testing.assert_allclose(grad, numeric_gradient(loss, y, raw), atol=1e-5)

    def test_hessian_positive(self):
        raw = np.array([-50.0, 0.0, 50.0])
        _, hess = LogisticLoss().gradient_hessian(np.zeros(3), raw)
        assert np.all(hess > 0)

    def test_loss_stable_at_extremes(self):
        loss = LogisticLoss()
        value = loss.loss(np.array([1.0, 0.0]), np.array([700.0, -700.0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_prediction_is_probability(self):
        raw = np.linspace(-10, 10, 21)
        p = LogisticLoss().raw_to_prediction(raw)
        assert np.all((p > 0) & (p < 1))
        assert np.all(np.diff(p) > 0)


class TestSigmoid:
    def test_extreme_values(self):
        assert sigmoid(np.array([800.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-800.0]))[0] == pytest.approx(0.0)

    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), 1.0, atol=1e-12)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_loss("l2"), SquaredLoss)
        assert isinstance(get_loss("binary"), LogisticLoss)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("huber")
