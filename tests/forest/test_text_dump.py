"""Tests for human-readable forest dumps."""

import pytest

from repro.forest import GradientBoostingRegressor, dump_tree, forest_summary

from tests.forest.test_tree import make_two_level


class TestDumpTree:
    def test_contains_structure(self):
        text = dump_tree(make_two_level())
        assert "x0 <= 0.5" in text
        assert "x1 <= 0.25" in text
        assert text.count("leaf:") == 3

    def test_feature_names(self):
        text = dump_tree(make_two_level(), feature_names=["age", "bmi"])
        assert "age <= 0.5" in text

    def test_max_depth_truncation(self):
        text = dump_tree(make_two_level(), max_depth=1)
        assert "..." in text
        assert "x1" not in text

    def test_gain_and_cover_shown(self):
        text = dump_tree(make_two_level())
        assert "gain=4" in text
        assert "n=12" in text


class TestForestSummary:
    def test_summary_content(self, small_forest):
        text = forest_summary(small_forest)
        assert "40 trees" in text
        assert "total splits" in text
        assert "x1" in text  # the dominant sine feature

    def test_feature_names(self, small_forest):
        names = ["f0", "f1", "f2", "f3", "f4"]
        text = forest_summary(small_forest, feature_names=names)
        assert "f1" in text

    def test_unused_feature_note(self):
        import numpy as np

        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (300, 3))
        X[:, 2] = 0.0
        forest = GradientBoostingRegressor(n_estimators=5, random_state=0)
        forest.fit(X, X[:, 0])
        assert "never used" in forest_summary(forest)

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            forest_summary(GradientBoostingRegressor())
