"""Equivalence tests for the traversal-free bitvector evaluation engine.

The bitvector engine must be *bitwise identical* to both the per-tree
loop and the packed descent on every forest shape: that is the contract
that lets it be the default ``predict_raw`` path.  These tests sweep
model families, mask widths (uint32, single-word uint64, multi-word),
degenerate trees, edge thresholds and special float inputs — all under
``REPRO_NUMERICS=strict`` (the suite-wide default from conftest) —
always comparing with ``np.array_equal`` (no tolerances).
"""

import numpy as np
import pytest

from repro.core.numerics import strict_enabled
from repro.forest import (
    BitvectorForest,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    OneVsRestGBDTClassifier,
    RandomForestClassifier,
    RandomForestRegressor,
    Tree,
    bitvector_for,
    engine_names,
    get_prediction_engine,
    invalidate_bitvector,
    invalidate_packed,
    packed_for,
    set_prediction_engine,
)
from repro.forest import bitvector as bitvector_mod
from repro.forest.engines import DEFAULT_ENGINE
from repro.forest.tree import LEAF


def loop_predict_raw(model, X):
    """Reference per-tree loop, independent of the engine knob."""
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    raw = np.full(X.shape[0], model.init_score_)
    for tree in model.trees_:
        raw += tree.predict(X)
    return raw


def chain_tree(depth, n_features=3):
    """A left-spine chain: ``depth`` internal nodes, ``depth + 1`` leaves."""
    n = 2 * depth + 1
    feature = np.full(n, LEAF, np.int32)
    threshold = np.zeros(n)
    left = np.full(n, -1, np.int32)
    right = np.full(n, -1, np.int32)
    value = np.zeros(n)
    node = 0
    for d in range(depth):
        feature[node] = d % n_features
        threshold[node] = 0.1 * d - 0.2
        left[node] = node + 1
        right[node] = node + 2
        value[node + 1] = float(d) - 1.5
        node += 2
    value[node] = 99.0
    return Tree(
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        value=value,
        gain=np.zeros(n),
        n_samples=np.ones(n, np.int64),
    )


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    X = rng.standard_normal((800, 5))
    y = X[:, 0] * 2 + np.sin(3 * X[:, 1]) + X[:, 2] * X[:, 3]
    y = y + 0.1 * rng.standard_normal(800)
    X_test = rng.standard_normal((700, 5))
    return X, y, X_test


@pytest.fixture(autouse=True)
def bitvector_engine():
    set_prediction_engine("bitvector")
    yield
    set_prediction_engine(DEFAULT_ENGINE)


class TestEquivalence:
    @pytest.mark.parametrize("max_depth", [1, 2, 4, -1])
    def test_gbdt_regressor_bitwise_identical(self, data, max_depth):
        X, y, X_test = data
        model = GradientBoostingRegressor(
            n_estimators=30, num_leaves=15, max_depth=max_depth, random_state=0
        )
        model.fit(X, y)
        out = model.predict_raw(X_test)
        assert np.array_equal(out, loop_predict_raw(model, X_test))
        packed = packed_for(model)
        assert np.array_equal(out, packed.predict_raw(X_test, use_cache=False))

    def test_gbdt_classifier_bitwise_identical(self, data):
        X, y, X_test = data
        model = GradientBoostingClassifier(
            n_estimators=25, num_leaves=15, random_state=0
        )
        model.fit(X, (y > 0).astype(float))
        out = model.predict_raw(X_test)
        assert np.array_equal(out, loop_predict_raw(model, X_test))
        assert np.array_equal(
            out, packed_for(model).predict_raw(X_test, use_cache=False)
        )

    @pytest.mark.parametrize("num_leaves", [2, 31])
    def test_random_forests_bitwise_identical(self, data, num_leaves):
        X, y, X_test = data
        reg = RandomForestRegressor(
            n_estimators=15, num_leaves=num_leaves, random_state=0
        )
        reg.fit(X, y)
        assert np.array_equal(reg.predict_raw(X_test), loop_predict_raw(reg, X_test))
        clf = RandomForestClassifier(
            n_estimators=15, num_leaves=num_leaves, random_state=0
        )
        clf.fit(X, (y > 0).astype(float))
        assert np.array_equal(clf.predict_raw(X_test), loop_predict_raw(clf, X_test))

    def test_multiclass_bitwise_identical(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((400, 4))
        y = np.argmax(X[:, :3] + 0.3 * rng.standard_normal((400, 3)), axis=1)
        model = OneVsRestGBDTClassifier(n_estimators=10, num_leaves=7, random_state=0)
        model.fit(X, y)
        X_test = rng.standard_normal((150, 4))
        raw = model.predict_raw(X_test)
        assert raw.shape == (150, model.n_classes_)
        for k, forest in enumerate(model.forests_):
            assert np.array_equal(raw[:, k], loop_predict_raw(forest, X_test))
        set_prediction_engine("loop")
        proba_loop = model.predict_proba(X_test)
        set_prediction_engine("bitvector")
        assert np.array_equal(model.predict_proba(X_test), proba_loop)

    def test_special_float_inputs_under_strict_numerics(self, data):
        X, y, _ = data
        assert strict_enabled(), "suite must run under REPRO_NUMERICS=strict"
        model = GradientBoostingRegressor(n_estimators=10, num_leaves=15, random_state=0)
        model.fit(X, y)
        X_test = np.zeros((4, 5))
        X_test[0, :] = np.nan
        X_test[1, :] = np.inf
        X_test[2, :] = -np.inf
        X_test[3, :] = 0.0
        out = model.predict_raw(X_test)
        assert np.array_equal(out, loop_predict_raw(model, X_test))
        assert np.all(np.isfinite(out))

    def test_staged_predict_bitwise_identical(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=12, num_leaves=7, random_state=0)
        model.fit(X, y)
        bv_stages = list(model.staged_predict_raw(X_test))
        set_prediction_engine("loop")
        loop_stages = list(model.staged_predict_raw(X_test))
        assert len(bv_stages) == len(loop_stages) == 12
        for b, l in zip(bv_stages, loop_stages):
            assert np.array_equal(b, l)

    def test_leaf_value_matrix_matches_per_tree_outputs(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=9, num_leaves=15, random_state=0)
        model.fit(X, y)
        encoded = bitvector_for(model)
        values = encoded.leaf_value_matrix(X_test)
        assert values.shape == (9, X_test.shape[0])
        per_tree = np.stack([tree.predict(X_test) for tree in model.trees_])
        assert np.array_equal(values, per_tree)


class TestMaskWidths:
    """The three mask layouts: uint32, single-word uint64, multi-word."""

    def _stub(self, trees, init=0.25, n_features=3):
        class Stub:
            """Minimal forest-protocol carrier for hand-built trees."""

        model = Stub()
        model.trees_ = trees
        model.init_score_ = init
        model.n_features_ = n_features
        return model

    @pytest.mark.parametrize(
        "depth, words, bits",
        [(31, 1, 32), (32, 1, 64), (63, 1, 64), (64, 2, 64), (200, 4, 64)],
    )
    def test_word_layout_and_equality(self, depth, words, bits):
        model = self._stub([chain_tree(depth), chain_tree(3)])
        encoded = bitvector_for(model)
        assert encoded is not None
        assert encoded.n_words == words
        assert encoded.word_bits == bits
        rng = np.random.default_rng(depth)
        X = rng.uniform(-1.0, 7.0, size=(257, 3))
        X[0] = np.nan
        X[1] = [0.1 * min(depth, 3) - 0.2, 0.0, 0.0]  # exact boundary
        assert np.array_equal(
            encoded.predict_raw(X, use_cache=False), loop_predict_raw(model, X)
        )

    def test_trained_multiword_forest(self):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((4000, 6))
        y = np.sum(np.sin(X * np.arange(1, 7)), axis=1)
        model = GradientBoostingRegressor(
            n_estimators=12, num_leaves=100, max_depth=-1, random_state=0
        )
        model.fit(X, y)
        assert max(t.n_leaves for t in model.trees_) > 64
        encoded = bitvector_for(model)
        assert encoded.n_words >= 2
        X_test = rng.standard_normal((900, 6))
        assert np.array_equal(
            model.predict_raw(X_test), loop_predict_raw(model, X_test)
        )


class TestDegenerateTrees:
    def _stub(self, trees, init=0.5, n_features=3):
        class Stub:
            """Minimal forest-protocol carrier for hand-built trees."""

        model = Stub()
        model.trees_ = trees
        model.init_score_ = init
        model.n_features_ = n_features
        return model

    def test_single_leaf_trees_only(self):
        model = self._stub([Tree.single_leaf(1.0), Tree.single_leaf(-0.25)])
        encoded = bitvector_for(model)
        assert encoded is not None
        X = np.random.default_rng(0).standard_normal((10, 3))
        assert np.array_equal(
            encoded.predict_raw(X, use_cache=False), loop_predict_raw(model, X)
        )

    def test_mixed_single_leaf_chain_and_stump(self):
        stump = Tree(
            feature=np.array([0, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.25, 0.0, 0.0]),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, -1.0, 2.0]),
            gain=np.array([1.0, 0.0, 0.0]),
            n_samples=np.array([10, 6, 4], dtype=np.int64),
        )
        model = self._stub([Tree.single_leaf(3.0), chain_tree(70), stump])
        encoded = bitvector_for(model)
        assert encoded.n_words == 2  # chain(70) has 71 leaves
        X = np.array([[0.25, 0.0, 0.0], [0.2500001, 0.0, 0.0], [-5.0, 1.0, 1.0]])
        assert np.array_equal(
            encoded.predict_raw(X, use_cache=False), loop_predict_raw(model, X)
        )

    def test_edge_thresholds_exact_boundary(self):
        """Rows sitting exactly on a threshold must go left, as in the loop."""
        t = np.nextafter(1.0, 0.0)
        tree = Tree(
            feature=np.array([1, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([t, 0.0, 0.0]),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, 10.0, 20.0]),
            gain=np.array([1.0, 0.0, 0.0]),
            n_samples=np.array([4, 2, 2], dtype=np.int64),
        )
        model = self._stub([tree], init=0.0)
        encoded = bitvector_for(model)
        X = np.array([[0.0, t, 0.0], [0.0, np.nextafter(t, 2.0), 0.0]])
        out = encoded.predict_raw(X, use_cache=False)
        assert np.array_equal(out, np.array([10.0, 20.0]))
        assert np.array_equal(out, loop_predict_raw(model, X))


class TestEligibilityAndFallback:
    def test_nan_threshold_declines_everywhere_loop_serves(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        root = int(np.flatnonzero(model.trees_[0].feature != LEAF)[0])
        model.trees_[0].threshold[root] = np.nan
        invalidate_packed(model)
        assert bitvector_for(model) is None
        assert packed_for(model) is None
        # predict_raw still works, now through the loop at the ladder's end.
        assert np.array_equal(model.predict_raw(X_test), loop_predict_raw(model, X_test))

    def test_too_wide_tree_declines(self):
        wide = chain_tree(64 * bitvector_mod.MAX_LEAF_WORDS)  # one leaf too many
        assert BitvectorForest.pack([wide], 0.0, 3) is None

    def test_table_budget_decline_falls_back_to_packed(self, data, monkeypatch):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=8, num_leaves=15, random_state=0)
        model.fit(X, y)
        monkeypatch.setattr(bitvector_mod, "MAX_TABLE_BYTES", 0)
        invalidate_packed(model)
        assert bitvector_for(model) is None
        # The engine ladder lands on packed: output unchanged, pack cached.
        out = model.predict_raw(X_test)
        assert np.array_equal(out, loop_predict_raw(model, X_test))
        assert model.__dict__["_packed_state"][1] is not None

    def test_decline_is_cached_until_invalidated(self, data, monkeypatch):
        X, y, _ = data
        model = GradientBoostingRegressor(n_estimators=4, num_leaves=7, random_state=0)
        model.fit(X, y)
        monkeypatch.setattr(bitvector_mod, "MAX_TABLE_BYTES", 0)
        invalidate_bitvector(model)
        assert bitvector_for(model) is None
        assert model.__dict__["_bitvector_state"][1] is None
        monkeypatch.setattr(bitvector_mod, "MAX_TABLE_BYTES", 256 * 1024 * 1024)
        # Same fingerprint: the cached decline persists until invalidated.
        assert bitvector_for(model) is None
        invalidate_bitvector(model)
        assert bitvector_for(model) is not None


class TestCacheAndInvalidation:
    def test_cache_hit_returns_identical_copy(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=10, num_leaves=15, random_state=0)
        model.fit(X, y)
        first = model.predict_raw(X_test)
        second = model.predict_raw(X_test)
        assert np.array_equal(first, second)
        assert first is not second
        # Mutating a returned array must not poison the cache.
        second += 123.0
        assert np.array_equal(model.predict_raw(X_test), first)

    def test_mutation_triggers_reencode(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=10, num_leaves=15, random_state=0)
        model.fit(X, y)
        before = model.predict_raw(X_test)
        encoded_before = bitvector_for(model)
        model.trees_[0].value *= 2.0
        after = model.predict_raw(X_test)
        assert bitvector_for(model) is not encoded_before
        assert not np.array_equal(before, after)
        assert np.array_equal(after, loop_predict_raw(model, X_test))

    def test_invalidate_packed_clears_every_engine(self, data):
        X, y, _ = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        assert bitvector_for(model) is not None
        assert packed_for(model) is not None
        invalidate_packed(model)
        assert "_bitvector_state" not in model.__dict__
        assert "_packed_state" not in model.__dict__

    def test_explicit_bitvector_invalidation_hook(self, data):
        X, y, _ = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        assert bitvector_for(model) is not None
        invalidate_bitvector(model)
        assert "_bitvector_state" not in model.__dict__


class TestEngineKnobAndRegistry:
    def test_bitvector_is_the_default_engine(self):
        assert DEFAULT_ENGINE == "bitvector"
        assert get_prediction_engine() == "bitvector"

    def test_all_three_engines_registered(self):
        assert set(engine_names()) >= {"bitvector", "packed", "loop"}

    def test_engine_knob_roundtrip(self):
        for name in ("loop", "packed", "bitvector"):
            set_prediction_engine(name)
            assert get_prediction_engine() == name
        with pytest.raises(ValueError):
            set_prediction_engine("warp-drive")

    def test_loop_engine_skips_encoding(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        set_prediction_engine("loop")
        out = model.predict_raw(X_test)
        assert "_bitvector_state" not in model.__dict__
        assert "_packed_state" not in model.__dict__
        set_prediction_engine("bitvector")
        assert np.array_equal(out, model.predict_raw(X_test))

    def test_packed_engine_skips_bitvector_encoding(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        set_prediction_engine("packed")
        out = model.predict_raw(X_test)
        assert "_bitvector_state" not in model.__dict__
        assert "_packed_state" in model.__dict__
        assert np.array_equal(out, loop_predict_raw(model, X_test))


class TestChunkingAndThreads:
    def test_n_jobs_and_chunking_invariance(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=20, num_leaves=31, random_state=0)
        model.fit(X, y)
        encoded = bitvector_for(model)
        reference = loop_predict_raw(model, X_test)
        for chunk in (64, 256, 2048):
            out = encoded.predict_raw(X_test, chunk=chunk, use_cache=False)
            assert np.array_equal(out, reference)
        out = encoded.predict_raw(X_test, n_jobs=4, use_cache=False)
        assert np.array_equal(out, reference)
        with pytest.raises(ValueError):
            encoded.predict_raw(X_test, chunk=100, use_cache=False)

    def test_feature_count_mismatch_rejected(self, data):
        X, y, _ = data
        model = GradientBoostingRegressor(n_estimators=4, num_leaves=7, random_state=0)
        model.fit(X, y)
        encoded = bitvector_for(model)
        with pytest.raises(ValueError, match="features"):
            encoded.predict_raw(np.zeros((3, 9)), use_cache=False)

    def test_direct_pack_roundtrip(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=8, num_leaves=15, random_state=0)
        model.fit(X, y)
        encoded = BitvectorForest.pack(
            model.trees_, model.init_score_, model.n_features_
        )
        assert encoded is not None
        assert encoded.n_trees == 8
        assert np.array_equal(
            encoded.predict_raw(X_test, use_cache=False),
            loop_predict_raw(model, X_test),
        )
