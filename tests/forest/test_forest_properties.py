"""Property-based invariants of the forest substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import (
    GradientBoostingRegressor,
    Tree,
    forest_from_dict,
    forest_to_dict,
)


def _random_forest_model(seed: int, n_rows: int, n_features: int, n_trees: int):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n_rows, n_features))
    y = X @ rng.normal(size=n_features) + rng.normal(0, 0.1, n_rows)
    model = GradientBoostingRegressor(
        n_estimators=n_trees,
        num_leaves=6,
        min_samples_leaf=2,
        learning_rate=0.3,
        random_state=seed,
    )
    model.fit(X, y)
    return model, X, y


class TestForestProperties:
    @given(
        st.integers(0, 1000),
        st.integers(60, 200),
        st.integers(1, 4),
        st.integers(1, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_prediction_decomposes_over_trees(self, seed, n_rows, n_features, n_trees):
        """predict_raw == init + sum of per-tree predictions, always."""
        model, X, _ = _random_forest_model(seed, n_rows, n_features, n_trees)
        manual = np.full(len(X), model.init_score_)
        for tree in model.trees_:
            manual += tree.predict(X)
        np.testing.assert_allclose(model.predict_raw(X), manual, atol=1e-12)

    @given(st.integers(0, 1000), st.integers(60, 150))
    @settings(max_examples=15, deadline=None)
    def test_serialization_round_trip_any_forest(self, seed, n_rows):
        model, X, _ = _random_forest_model(seed, n_rows, 3, 4)
        clone = forest_from_dict(forest_to_dict(model))
        np.testing.assert_array_equal(model.predict_raw(X), clone.predict_raw(X))

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_train_loss_never_increases(self, seed):
        """L2 boosting with full data is a descent method."""
        model, _, _ = _random_forest_model(seed, 150, 3, 10)
        losses = np.asarray(model.train_losses_)
        assert np.all(np.diff(losses) <= 1e-10)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_leaf_covers_partition_root(self, seed):
        """Within each tree, leaf sample counts sum to the root's count."""
        model, _, _ = _random_forest_model(seed, 200, 3, 5)
        for tree in model.trees_:
            leaves = tree.feature == -1
            assert tree.n_samples[leaves].sum() == tree.n_samples[0]

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_child_covers_sum_to_parent(self, seed):
        model, _, _ = _random_forest_model(seed, 200, 3, 5)
        for tree in model.trees_:
            for node in tree.internal_nodes():
                total = (
                    tree.n_samples[tree.left[node]]
                    + tree.n_samples[tree.right[node]]
                )
                assert total == tree.n_samples[node]

    @given(st.integers(0, 500), st.lists(st.floats(-2, 2), min_size=3, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_apply_and_decision_path_agree(self, seed, coords):
        """The vectorized descent lands on the same leaf as the path walk."""
        model, _, _ = _random_forest_model(seed, 150, 3, 3)
        x = np.asarray(coords)
        for tree in model.trees_:
            leaf_via_apply = int(tree.apply(x[None, :])[0])
            leaf_via_path = tree.decision_path(x)[-1]
            assert leaf_via_apply == leaf_via_path

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_threshold_tests_are_reproducible_from_structure(self, seed):
        """Re-evaluating the stored structure by hand matches predict."""
        model, X, _ = _random_forest_model(seed, 100, 2, 2)
        tree = model.trees_[0]

        def manual_predict(x):
            node = 0
            while tree.feature[node] != -1:
                if x[tree.feature[node]] <= tree.threshold[node]:
                    node = int(tree.left[node])
                else:
                    node = int(tree.right[node])
            return tree.value[node]

        for row in X[:20]:
            assert manual_predict(row) == pytest.approx(
                tree.predict(row[None, :])[0]
            )
