"""Tests for forest serialization (the GEF hand-off format)."""

import numpy as np
import pytest

from repro.forest import (
    GradientBoostingRegressor,
    forest_from_dict,
    forest_to_dict,
    forests_equal,
    load_forest,
    save_forest,
)


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, small_forest, d_prime_small):
        clone = forest_from_dict(forest_to_dict(small_forest))
        X = d_prime_small.X_test[:100]
        np.testing.assert_allclose(
            small_forest.predict_raw(X), clone.predict_raw(X)
        )

    def test_dict_round_trip_preserves_structure(self, small_forest):
        clone = forest_from_dict(forest_to_dict(small_forest))
        assert forests_equal(small_forest, clone)

    def test_json_file_round_trip(self, small_forest, d_prime_small, tmp_path):
        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        clone = load_forest(path)
        X = d_prime_small.X_test[:50]
        np.testing.assert_allclose(
            small_forest.predict_raw(X), clone.predict_raw(X)
        )

    def test_classifier_round_trip(self, small_classifier, classification_data):
        X, _ = classification_data
        clone = forest_from_dict(forest_to_dict(small_classifier))
        np.testing.assert_allclose(
            small_classifier.predict_proba(X[:50]), clone.predict_proba(X[:50])
        )


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            forest_to_dict(GradientBoostingRegressor())

    def test_unknown_class_rejected(self, small_forest):
        data = forest_to_dict(small_forest)
        data["model_class"] = "MysteryModel"
        with pytest.raises(ValueError, match="unknown model class"):
            forest_from_dict(data)

    def test_forests_equal_detects_differences(self, small_forest):
        clone = forest_from_dict(forest_to_dict(small_forest))
        clone.trees_[0].value[0] += 1.0
        assert not forests_equal(small_forest, clone)

    def test_forests_equal_detects_init_score(self, small_forest):
        clone = forest_from_dict(forest_to_dict(small_forest))
        clone.init_score_ += 0.5
        assert not forests_equal(small_forest, clone)


class TestAtomicSave:
    """save_forest must never expose a torn file to a concurrent reader."""

    def test_overwrite_is_atomic_via_replace(self, small_forest, tmp_path,
                                             monkeypatch):
        import repro.forest.model_io as model_io

        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        old_payload = path.read_text()

        observed = []
        real_replace = model_io.os.replace

        def spying_replace(src, dst):
            # At the instant of the swap the destination still holds the
            # complete OLD document — a reader racing the save parses it.
            observed.append(forests_equal(small_forest, load_forest(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(model_io.os, "replace", spying_replace)
        clone = forest_from_dict(forest_to_dict(small_forest))
        clone.init_score_ += 1.0
        save_forest(clone, path)
        assert observed == [True]
        assert path.read_text() != old_payload
        assert forests_equal(clone, load_forest(path))

    def test_interrupted_write_leaves_original_intact(self, small_forest,
                                                      tmp_path, monkeypatch):
        import repro.forest.model_io as model_io

        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        before = path.read_text()

        def failing_replace(src, dst):
            raise OSError("synthetic crash between write and swap")

        monkeypatch.setattr(model_io.os, "replace", failing_replace)
        clone = forest_from_dict(forest_to_dict(small_forest))
        clone.init_score_ += 1.0
        with pytest.raises(OSError, match="synthetic crash"):
            save_forest(clone, path)
        # The original file is untouched and still a complete document...
        assert path.read_text() == before
        assert forests_equal(small_forest, load_forest(path))
        # ...and the aborted temp file was cleaned up.
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []

    def test_no_temp_files_survive_a_successful_save(self, small_forest,
                                                     tmp_path):
        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        save_forest(small_forest, path)  # overwrite the same destination
        assert [p.name for p in path.parent.iterdir()] == ["forest.json"]

    def test_saved_file_honours_the_umask(self, small_forest, tmp_path):
        # mkstemp creates 0600 temp files; save_forest must widen the
        # final artifact to what a plain open() would produce, or the
        # hand-off file stops being readable by the receiving party.
        import os
        import stat

        path = tmp_path / "forest.json"
        old_umask = os.umask(0o022)
        try:
            save_forest(small_forest, path)
        finally:
            os.umask(old_umask)
        mode = stat.S_IMODE(path.stat().st_mode)
        assert mode == 0o644, oct(mode)
