"""Tests for forest serialization (the GEF hand-off format)."""

import numpy as np
import pytest

from repro.forest import (
    GradientBoostingRegressor,
    forest_from_dict,
    forest_to_dict,
    forests_equal,
    load_forest,
    save_forest,
)


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, small_forest, d_prime_small):
        clone = forest_from_dict(forest_to_dict(small_forest))
        X = d_prime_small.X_test[:100]
        np.testing.assert_allclose(
            small_forest.predict_raw(X), clone.predict_raw(X)
        )

    def test_dict_round_trip_preserves_structure(self, small_forest):
        clone = forest_from_dict(forest_to_dict(small_forest))
        assert forests_equal(small_forest, clone)

    def test_json_file_round_trip(self, small_forest, d_prime_small, tmp_path):
        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        clone = load_forest(path)
        X = d_prime_small.X_test[:50]
        np.testing.assert_allclose(
            small_forest.predict_raw(X), clone.predict_raw(X)
        )

    def test_classifier_round_trip(self, small_classifier, classification_data):
        X, _ = classification_data
        clone = forest_from_dict(forest_to_dict(small_classifier))
        np.testing.assert_allclose(
            small_classifier.predict_proba(X[:50]), clone.predict_proba(X[:50])
        )


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            forest_to_dict(GradientBoostingRegressor())

    def test_unknown_class_rejected(self, small_forest):
        data = forest_to_dict(small_forest)
        data["model_class"] = "MysteryModel"
        with pytest.raises(ValueError, match="unknown model class"):
            forest_from_dict(data)

    def test_forests_equal_detects_differences(self, small_forest):
        clone = forest_from_dict(forest_to_dict(small_forest))
        clone.trees_[0].value[0] += 1.0
        assert not forests_equal(small_forest, clone)

    def test_forests_equal_detects_init_score(self, small_forest):
        clone = forest_from_dict(forest_to_dict(small_forest))
        clone.init_score_ += 0.5
        assert not forests_equal(small_forest, clone)
