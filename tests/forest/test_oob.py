"""Tests for random-forest out-of-bag predictions."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor
from repro.metrics import r2_score


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (800, 3))
    y = 3 * X[:, 0] + np.sin(5 * X[:, 1]) + rng.normal(0, 0.05, 800)
    model = RandomForestRegressor(
        n_estimators=40, num_leaves=64, min_samples_leaf=5,
        max_features="all", random_state=0,
    )
    model.fit(X, y)
    return model, X, y


class TestOob:
    def test_oob_estimates_generalization(self, fitted):
        model, X, y = fitted
        oob = model.oob_prediction(X)
        valid = ~np.isnan(oob)
        assert valid.mean() > 0.99  # with 40 trees almost all rows have OOB
        oob_r2 = r2_score(y[valid], oob[valid])
        assert 0.7 < oob_r2 < 1.0

    def test_oob_worse_than_in_bag(self, fitted):
        """OOB is honest: it must not beat the resubstitution score."""
        model, X, y = fitted
        oob = model.oob_prediction(X)
        valid = ~np.isnan(oob)
        in_bag_r2 = r2_score(y[valid], model.predict(X[valid]))
        oob_r2 = r2_score(y[valid], oob[valid])
        assert oob_r2 <= in_bag_r2 + 1e-9

    def test_requires_bootstrap(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (100, 2))
        model = RandomForestRegressor(
            n_estimators=3, bootstrap=False, random_state=0
        )
        model.fit(X, X[:, 0])
        with pytest.raises(ValueError, match="bootstrap"):
            model.oob_prediction(X)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().oob_prediction(np.zeros((2, 2)))
