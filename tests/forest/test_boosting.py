"""Tests for the gradient-boosting models."""

import numpy as np
import pytest

from repro.forest import GradientBoostingClassifier, GradientBoostingRegressor
from repro.metrics import r2_score


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (1500, 4))
    y = 2 * X[:, 0] + np.sin(8 * X[:, 1]) + rng.normal(0, 0.05, 1500)
    return X[:1000], y[:1000], X[1000:], y[1000:]


class TestRegressor:
    def test_fits_nonlinear_target(self, regression_data):
        X, y, X_test, y_test = regression_data
        model = GradientBoostingRegressor(
            n_estimators=80, num_leaves=16, learning_rate=0.2, random_state=0
        )
        model.fit(X, y)
        assert r2_score(y_test, model.predict(X_test)) > 0.95

    def test_prediction_is_init_plus_trees(self, regression_data):
        X, y, X_test, _ = regression_data
        model = GradientBoostingRegressor(n_estimators=10, random_state=0)
        model.fit(X, y)
        manual = np.full(len(X_test), model.init_score_)
        for tree in model.trees_:
            manual += tree.predict(X_test)
        np.testing.assert_allclose(model.predict(X_test), manual)

    def test_deterministic_given_seed(self, regression_data):
        X, y, X_test, _ = regression_data
        preds = []
        for _ in range(2):
            model = GradientBoostingRegressor(
                n_estimators=15, subsample=0.7, random_state=42
            )
            model.fit(X, y)
            preds.append(model.predict(X_test))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_more_trees_reduce_train_loss(self, regression_data):
        X, y, _, _ = regression_data
        model = GradientBoostingRegressor(n_estimators=40, random_state=0)
        model.fit(X, y)
        losses = np.asarray(model.train_losses_)
        assert losses[-1] < losses[0]
        assert np.all(np.diff(losses) <= 1e-12)  # monotone for L2

    def test_feature_importance_ranks_signal(self, regression_data):
        X, y, _, _ = regression_data
        model = GradientBoostingRegressor(n_estimators=30, random_state=0)
        model.fit(X, y)
        imp = model.feature_importance("gain")
        assert set(np.argsort(-imp)[:2]) == {0, 1}
        splits = model.feature_importance("split")
        assert splits.sum() > 0
        with pytest.raises(ValueError):
            model.feature_importance("cover")

    def test_early_stopping_truncates(self, regression_data):
        X, y, X_val, y_val = regression_data
        model = GradientBoostingRegressor(
            n_estimators=400,
            learning_rate=0.3,
            early_stopping_rounds=5,
            random_state=0,
        )
        model.fit(X, y, eval_set=(X_val, y_val))
        assert model.best_iteration_ is not None
        assert model.n_trees_ == model.best_iteration_
        assert model.n_trees_ < 400

    def test_early_stopping_requires_eval_set(self, regression_data):
        X, y, _, _ = regression_data
        model = GradientBoostingRegressor(early_stopping_rounds=3)
        with pytest.raises(ValueError, match="eval_set"):
            model.fit(X, y)

    def test_subsample_bounds(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_learning_rate_bounds(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)

    def test_shape_validation(self):
        model = GradientBoostingRegressor()
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            model.fit(np.zeros(5), np.zeros(5))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))


class TestClassifier:
    def test_separable_problem(self, small_classifier, classification_data):
        X, y = classification_data
        acc = np.mean(small_classifier.predict(X) == y)
        assert acc > 0.9

    def test_proba_in_unit_interval(self, small_classifier, classification_data):
        X, _ = classification_data
        p = small_classifier.predict_proba(X)
        assert np.all((p > 0) & (p < 1))

    def test_rejects_non_binary_labels(self):
        X = np.random.default_rng(0).uniform(size=(30, 2))
        y = np.arange(30.0)
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier(n_estimators=2).fit(X, y)

    def test_predict_is_thresholded_proba(self, small_classifier, classification_data):
        X, _ = classification_data
        p = small_classifier.predict_proba(X[:50])
        labels = small_classifier.predict(X[:50])
        np.testing.assert_array_equal(labels, (p >= 0.5).astype(int))
