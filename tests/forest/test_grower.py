"""Tests for the leaf-wise histogram tree grower."""

import numpy as np
import pytest

from repro.forest import BinMapper, TreeGrowerParams, grow_tree


def grow_on(X, y, **param_overrides):
    """Grow a single regression tree on (X, y) with L2 gradients."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mapper = BinMapper(max_bins=64)
    binned = mapper.fit_transform(X)
    params = TreeGrowerParams(
        num_leaves=param_overrides.pop("num_leaves", 8),
        min_samples_leaf=param_overrides.pop("min_samples_leaf", 1),
        min_child_weight=0.0,
        reg_lambda=param_overrides.pop("reg_lambda", 0.0),
        **param_overrides,
    )
    # grad = -y, hess = 1: leaf value becomes the in-leaf mean of y.
    tree = grow_tree(binned, -y, np.ones(len(y)), mapper, params)
    return tree, mapper


class TestSplitCorrectness:
    def test_perfect_step_function(self):
        """A step in x should be found exactly, leaves = side means."""
        X = np.linspace(0, 1, 100)[:, None]
        y = np.where(X[:, 0] < 0.5, -1.0, 1.0)
        tree, _ = grow_on(X, y, num_leaves=2)
        assert tree.n_leaves == 2
        preds = tree.predict(X)
        np.testing.assert_allclose(preds, y, atol=1e-12)

    def test_picks_informative_feature(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (400, 3))
        y = np.where(X[:, 1] < 0.3, 0.0, 5.0)  # only feature 1 matters
        tree, _ = grow_on(X, y, num_leaves=2)
        assert tree.feature[0] == 1

    def test_leaf_values_are_means(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (300, 2))
        y = rng.normal(size=300)
        tree, _ = grow_on(X, y, num_leaves=6)
        leaves = tree.apply(X)
        for leaf in np.unique(leaves):
            in_leaf = y[leaves == leaf]
            np.testing.assert_allclose(tree.value[leaf], in_leaf.mean(), atol=1e-10)

    def test_gain_positive_on_splits(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, (500, 4))
        y = X[:, 0] * 3 + rng.normal(0, 0.1, 500)
        tree, _ = grow_on(X, y, num_leaves=10)
        for node in tree.internal_nodes():
            assert tree.gain[node] > 0


class TestGrowthConstraints:
    def test_num_leaves_cap(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (1000, 3))
        y = rng.normal(size=1000)
        tree, _ = grow_on(X, y, num_leaves=5)
        assert tree.n_leaves <= 5

    def test_max_depth_cap(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 1, (1000, 3))
        y = X.sum(axis=1) + rng.normal(0, 0.01, 1000)
        tree, _ = grow_on(X, y, num_leaves=64, max_depth=3)
        assert tree.max_depth <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, (200, 2))
        y = rng.normal(size=200)
        tree, _ = grow_on(X, y, num_leaves=32, min_samples_leaf=25)
        leaves = tree.feature == -1
        assert tree.n_samples[leaves].min() >= 25

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(6).uniform(0, 1, (100, 2))
        tree, _ = grow_on(X, np.full(100, 2.0), num_leaves=8)
        assert tree.n_leaves == 1
        np.testing.assert_allclose(tree.value[0], 2.0)

    def test_min_split_gain_blocks_weak_splits(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 1, (300, 2))
        y = rng.normal(0, 0.01, 300)  # almost pure noise
        tree, _ = grow_on(X, y, num_leaves=16, min_split_gain=1e9)
        assert tree.n_leaves == 1

    def test_feature_subset_respected(self):
        rng = np.random.default_rng(8)
        X = rng.uniform(0, 1, (400, 3))
        y = np.where(X[:, 0] < 0.5, 0.0, 4.0) + 0.1 * X[:, 2]
        X64 = np.asarray(X, dtype=np.float64)
        mapper = BinMapper(max_bins=64)
        binned = mapper.fit_transform(X64)
        params = TreeGrowerParams(num_leaves=8, min_samples_leaf=1,
                                  min_child_weight=0.0, reg_lambda=0.0)
        tree = grow_tree(binned, -y, np.ones(len(y)), mapper, params,
                         feature_subset=np.array([1, 2]))
        assert 0 not in tree.used_features()

    def test_rows_subset(self):
        rng = np.random.default_rng(9)
        X = rng.uniform(0, 1, (200, 2))
        y = X[:, 0]
        X64 = np.asarray(X, dtype=np.float64)
        mapper = BinMapper()
        binned = mapper.fit_transform(X64)
        params = TreeGrowerParams(num_leaves=4, min_samples_leaf=1,
                                  min_child_weight=0.0, reg_lambda=0.0)
        rows = np.arange(50)
        tree = grow_tree(binned, -y, np.ones(len(y)), mapper, params, rows=rows)
        assert tree.n_samples[0] == 50


class TestParamsValidation:
    def test_invalid_num_leaves(self):
        with pytest.raises(ValueError):
            TreeGrowerParams(num_leaves=1)

    def test_invalid_min_samples(self):
        with pytest.raises(ValueError):
            TreeGrowerParams(min_samples_leaf=0)

    def test_invalid_reg_lambda(self):
        with pytest.raises(ValueError):
            TreeGrowerParams(reg_lambda=-1.0)


class TestHistogramSubtraction:
    def test_equivalent_to_direct_computation(self):
        """Subtraction-derived sibling histograms grow identical trees."""
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (3000, 6))
        y = 2 * X[:, 0] + np.sin(9 * X[:, 1]) + rng.normal(0, 0.1, 3000)
        mapper = BinMapper()
        binned = mapper.fit_transform(np.asarray(X, dtype=np.float64))
        grad, hess = -y, np.ones(len(y))
        kwargs = dict(num_leaves=24, min_samples_leaf=5,
                      min_child_weight=0.0, reg_lambda=0.0)
        direct = grow_tree(
            binned, grad, hess, mapper,
            TreeGrowerParams(use_histogram_subtraction=False, **kwargs),
        )
        subtracted = grow_tree(
            binned, grad, hess, mapper,
            TreeGrowerParams(use_histogram_subtraction=True, **kwargs),
        )
        np.testing.assert_array_equal(direct.feature, subtracted.feature)
        np.testing.assert_allclose(direct.threshold, subtracted.threshold)
        np.testing.assert_allclose(direct.value, subtracted.value, atol=1e-10)
        np.testing.assert_array_equal(direct.n_samples, subtracted.n_samples)

    def test_counts_stay_integral_after_subtraction(self):
        """min_samples_leaf must hold exactly despite float subtraction."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (2000, 3))
        y = rng.normal(size=2000)
        tree, _ = grow_on(X, y, num_leaves=32, min_samples_leaf=30)
        leaves = tree.feature == -1
        assert tree.n_samples[leaves].min() >= 30


class TestNewtonLeafValues:
    def test_regularization_shrinks_leaves(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = np.where(X[:, 0] < 0.5, -1.0, 1.0)
        plain, _ = grow_on(X, y, num_leaves=2, reg_lambda=0.0)
        shrunk, _ = grow_on(X, y, num_leaves=2, reg_lambda=10.0)
        assert np.all(np.abs(shrunk.value[1:]) < np.abs(plain.value[1:]))
