"""Tests for the random forest models."""

import numpy as np
import pytest

from repro.forest import RandomForestClassifier, RandomForestRegressor
from repro.metrics import r2_score


@pytest.fixture(scope="module")
def rf_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (1200, 4))
    y = 3 * X[:, 0] + X[:, 1] ** 2 + rng.normal(0, 0.05, 1200)
    return X[:900], y[:900], X[900:], y[900:]


class TestRandomForestRegressor:
    def test_fits_signal(self, rf_data):
        X, y, X_test, y_test = rf_data
        model = RandomForestRegressor(
            n_estimators=40, max_features="all", random_state=0
        )
        model.fit(X, y)
        assert r2_score(y_test, model.predict(X_test)) > 0.9

    def test_sum_of_trees_protocol(self, rf_data):
        """RF predictions must decompose as init + sum(trees) like GBDTs."""
        X, y, X_test, _ = rf_data
        model = RandomForestRegressor(n_estimators=10, random_state=0)
        model.fit(X, y)
        manual = np.full(len(X_test), model.init_score_)
        for tree in model.trees_:
            manual += tree.predict(X_test)
        np.testing.assert_allclose(model.predict(X_test), manual)

    def test_bootstrap_changes_trees(self, rf_data):
        X, y, _, _ = rf_data
        model = RandomForestRegressor(n_estimators=3, random_state=0)
        model.fit(X, y)
        roots = {
            (int(t.feature[0]), float(t.threshold[0])) for t in model.trees_
        }
        assert len(roots) > 1  # bagging should vary at least the root

    def test_max_features_fraction(self, rf_data):
        X, y, _, _ = rf_data
        model = RandomForestRegressor(
            n_estimators=4, max_features=0.5, random_state=0
        )
        model.fit(X, y)
        for tree in model.trees_:
            assert len(tree.used_features()) <= 2

    def test_max_features_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features=0.0).fit(
                np.zeros((10, 2)), np.zeros(10)
            )
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features="log2").fit(
                np.zeros((10, 2)), np.zeros(10)
            )

    def test_feature_importance(self, rf_data):
        X, y, _, _ = rf_data
        model = RandomForestRegressor(
            n_estimators=20, max_features="all", random_state=0
        )
        model.fit(X, y)
        imp = model.feature_importance()
        assert np.argmax(imp) == 0

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))


class TestRandomForestClassifier:
    @pytest.fixture(scope="class")
    def clf_and_data(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (1000, 3))
        y = (X[:, 0] + X[:, 1] > 1.0).astype(float)
        model = RandomForestClassifier(
            n_estimators=25, max_features="all", random_state=0
        )
        model.fit(X, y)
        return model, X, y

    def test_accuracy(self, clf_and_data):
        model, X, y = clf_and_data
        assert np.mean(model.predict(X) == y) > 0.93

    def test_proba_bounds(self, clf_and_data):
        model, X, _ = clf_and_data
        p = model.predict_proba(X)
        assert p.min() >= 0.0 and p.max() <= 1.0

    def test_proba_is_leaf_fraction_average(self, clf_and_data):
        """Probabilities come from averaging per-tree class fractions."""
        model, X, _ = clf_and_data
        manual = np.full(len(X), model.init_score_)
        for tree in model.trees_:
            manual += tree.predict(X)
        np.testing.assert_allclose(model.predict_proba(X), np.clip(manual, 0, 1))

    def test_rejects_non_binary(self):
        X = np.random.default_rng(0).uniform(size=(30, 2))
        with pytest.raises(ValueError, match="binary"):
            RandomForestClassifier(n_estimators=2).fit(X, np.arange(30.0))
