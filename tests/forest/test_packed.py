"""Equivalence tests for the packed forest evaluation engine.

The packed engine must be *bitwise identical* to the per-tree loop on
every forest shape: that is the whole contract that lets it be the default
``predict_raw`` path.  These tests sweep model families, depths, degenerate
trees, edge thresholds and special float inputs, always comparing with
``np.array_equal`` (no tolerances).
"""

import numpy as np
import pytest

from repro.forest import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    OneVsRestGBDTClassifier,
    PackedForest,
    RandomForestClassifier,
    RandomForestRegressor,
    Tree,
    get_prediction_engine,
    invalidate_packed,
    packed_for,
    set_prediction_engine,
)
from repro.forest.engines import DEFAULT_ENGINE
from repro.forest.tree import LEAF


def loop_predict_raw(model, X):
    """Reference per-tree loop, independent of the engine knob."""
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    raw = np.full(X.shape[0], model.init_score_)
    for tree in model.trees_:
        raw += tree.predict(X)
    return raw


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    X = rng.standard_normal((800, 5))
    y = X[:, 0] * 2 + np.sin(3 * X[:, 1]) + X[:, 2] * X[:, 3]
    y = y + 0.1 * rng.standard_normal(800)
    X_test = rng.standard_normal((700, 5))
    return X, y, X_test


@pytest.fixture(autouse=True)
def packed_engine():
    set_prediction_engine("packed")
    yield
    set_prediction_engine(DEFAULT_ENGINE)


class TestEquivalence:
    @pytest.mark.parametrize("max_depth", [1, 2, 4, -1])
    def test_gbdt_regressor_bitwise_identical(self, data, max_depth):
        X, y, X_test = data
        model = GradientBoostingRegressor(
            n_estimators=30, num_leaves=15, max_depth=max_depth, random_state=0
        )
        model.fit(X, y)
        assert np.array_equal(model.predict_raw(X_test), loop_predict_raw(model, X_test))

    def test_gbdt_classifier_bitwise_identical(self, data):
        X, y, X_test = data
        model = GradientBoostingClassifier(
            n_estimators=25, num_leaves=15, random_state=0
        )
        model.fit(X, (y > 0).astype(float))
        assert np.array_equal(model.predict_raw(X_test), loop_predict_raw(model, X_test))

    @pytest.mark.parametrize("num_leaves", [2, 31])
    def test_random_forests_bitwise_identical(self, data, num_leaves):
        X, y, X_test = data
        reg = RandomForestRegressor(
            n_estimators=15, num_leaves=num_leaves, random_state=0
        )
        reg.fit(X, y)
        assert np.array_equal(reg.predict_raw(X_test), loop_predict_raw(reg, X_test))
        clf = RandomForestClassifier(
            n_estimators=15, num_leaves=num_leaves, random_state=0
        )
        clf.fit(X, (y > 0).astype(float))
        assert np.array_equal(clf.predict_raw(X_test), loop_predict_raw(clf, X_test))

    def test_multiclass_bitwise_identical(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((400, 4))
        y = np.argmax(X[:, :3] + 0.3 * rng.standard_normal((400, 3)), axis=1)
        model = OneVsRestGBDTClassifier(n_estimators=10, num_leaves=7, random_state=0)
        model.fit(X, y)
        X_test = rng.standard_normal((150, 4))
        raw = model.predict_raw(X_test)
        assert raw.shape == (150, model.n_classes_)
        for k, forest in enumerate(model.forests_):
            assert np.array_equal(raw[:, k], loop_predict_raw(forest, X_test))
        set_prediction_engine("loop")
        proba_loop = model.predict_proba(X_test)
        set_prediction_engine("packed")
        assert np.array_equal(model.predict_proba(X_test), proba_loop)

    def test_special_float_inputs(self, data):
        X, y, _ = data
        model = GradientBoostingRegressor(n_estimators=10, num_leaves=15, random_state=0)
        model.fit(X, y)
        X_test = np.zeros((4, 5))
        X_test[0, :] = np.nan
        X_test[1, :] = np.inf
        X_test[2, :] = -np.inf
        X_test[3, :] = 0.0
        assert np.array_equal(model.predict_raw(X_test), loop_predict_raw(model, X_test))

    def test_staged_predict_bitwise_identical(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=12, num_leaves=7, random_state=0)
        model.fit(X, y)
        packed_stages = list(model.staged_predict_raw(X_test))
        set_prediction_engine("loop")
        loop_stages = list(model.staged_predict_raw(X_test))
        assert len(packed_stages) == len(loop_stages) == 12
        for p, l in zip(packed_stages, loop_stages):
            assert np.array_equal(p, l)


class TestDegenerateTrees:
    def _forest_of(self, trees, init=0.5, n_features=3):
        class Stub:
            """Minimal forest-protocol carrier for hand-built trees."""

        model = Stub()
        model.trees_ = trees
        model.init_score_ = init
        model.n_features_ = n_features
        return model

    def test_single_leaf_trees_only(self):
        model = self._forest_of([Tree.single_leaf(1.0), Tree.single_leaf(-0.25)])
        packed = packed_for(model)
        X = np.random.default_rng(0).standard_normal((10, 3))
        assert np.array_equal(packed.predict_raw(X), loop_predict_raw(model, X))

    def test_mixed_single_leaf_and_deep_trees(self):
        stump = Tree(
            feature=np.array([0, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.25, 0.0, 0.0]),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, -1.0, 2.0]),
            gain=np.array([1.0, 0.0, 0.0]),
            n_samples=np.array([10, 6, 4], dtype=np.int64),
        )
        model = self._forest_of([Tree.single_leaf(3.0), stump])
        packed = packed_for(model)
        X = np.array([[0.25, 0.0, 0.0], [0.2500001, 0.0, 0.0], [-5.0, 1.0, 1.0]])
        assert np.array_equal(packed.predict_raw(X), loop_predict_raw(model, X))

    def test_edge_thresholds_exact_boundary(self):
        """Rows sitting exactly on a threshold must go left, as in the loop."""
        t = np.nextafter(1.0, 0.0)
        tree = Tree(
            feature=np.array([1, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([t, 0.0, 0.0]),
            left=np.array([1, -1, -1], dtype=np.int32),
            right=np.array([2, -1, -1], dtype=np.int32),
            value=np.array([0.0, 10.0, 20.0]),
            gain=np.array([1.0, 0.0, 0.0]),
            n_samples=np.array([4, 2, 2], dtype=np.int64),
        )
        model = self._forest_of([tree], init=0.0)
        packed = packed_for(model)
        X = np.array([[0.0, t, 0.0], [0.0, np.nextafter(t, 2.0), 0.0]])
        out = packed.predict_raw(X)
        assert np.array_equal(out, np.array([10.0, 20.0]))
        assert np.array_equal(out, loop_predict_raw(model, X))

    def test_unpackable_forest_falls_back(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        root = int(np.flatnonzero(model.trees_[0].feature != LEAF)[0])
        model.trees_[0].threshold[root] = np.nan
        invalidate_packed(model)
        assert packed_for(model) is None
        # predict_raw still works through the loop fallback.
        assert np.array_equal(model.predict_raw(X_test), loop_predict_raw(model, X_test))


class TestCacheAndInvalidation:
    def test_cache_hit_returns_identical_copy(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=10, num_leaves=15, random_state=0)
        model.fit(X, y)
        first = model.predict_raw(X_test)
        second = model.predict_raw(X_test)
        assert np.array_equal(first, second)
        assert first is not second
        # Mutating a returned array must not poison the cache.
        second += 123.0
        assert np.array_equal(model.predict_raw(X_test), first)

    def test_mutation_triggers_repack(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=10, num_leaves=15, random_state=0)
        model.fit(X, y)
        before = model.predict_raw(X_test)
        packed_before = packed_for(model)
        model.trees_[0].value *= 2.0
        after = model.predict_raw(X_test)
        assert packed_for(model) is not packed_before
        assert not np.array_equal(before, after)
        assert np.array_equal(after, loop_predict_raw(model, X_test))

    def test_explicit_invalidation_hook(self, data):
        X, y, _ = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        assert packed_for(model) is not None
        invalidate_packed(model)
        assert "_packed_state" not in model.__dict__


class TestEngineKnobAndThreads:
    def test_engine_knob_roundtrip(self):
        assert get_prediction_engine() == "packed"
        set_prediction_engine("loop")
        assert get_prediction_engine() == "loop"
        set_prediction_engine("packed")
        with pytest.raises(ValueError):
            set_prediction_engine("warp-drive")

    def test_loop_engine_skips_packing(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=5, num_leaves=7, random_state=0)
        model.fit(X, y)
        set_prediction_engine("loop")
        out = model.predict_raw(X_test)
        assert "_packed_state" not in model.__dict__
        set_prediction_engine("packed")
        assert np.array_equal(out, model.predict_raw(X_test))

    def test_n_jobs_and_chunking_invariance(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=20, num_leaves=31, random_state=0)
        model.fit(X, y)
        packed = packed_for(model)
        reference = loop_predict_raw(model, X_test)
        for chunk in (32, 128, 1024):
            out = packed.predict_raw(X_test, chunk=chunk, use_cache=False)
            assert np.array_equal(out, reference)
        out = packed.predict_raw(X_test, n_jobs=4, use_cache=False)
        assert np.array_equal(out, reference)
        with pytest.raises(ValueError):
            packed.predict_raw(X_test, chunk=100, use_cache=False)

    def test_direct_pack_roundtrip(self, data):
        X, y, X_test = data
        model = GradientBoostingRegressor(n_estimators=8, num_leaves=15, random_state=0)
        model.fit(X, y)
        packed = PackedForest.pack(model.trees_, model.init_score_, model.n_features_)
        assert packed is not None
        assert packed.n_trees == 8
        assert np.array_equal(packed.predict_raw(X_test), loop_predict_raw(model, X_test))
