"""Tests for one-vs-rest multiclass boosting."""

import numpy as np
import pytest

from repro.forest import OneVsRestGBDTClassifier


@pytest.fixture(scope="module")
def three_class_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (1500, 3))
    # Three regions along x0 with some overlap near the boundaries.
    y = np.digitize(X[:, 0] + rng.normal(0, 0.05, 1500), [0.33, 0.66])
    return X, y.astype(float)


@pytest.fixture(scope="module")
def fitted(three_class_data):
    X, y = three_class_data
    model = OneVsRestGBDTClassifier(
        n_estimators=30, num_leaves=8, learning_rate=0.2, random_state=0
    )
    model.fit(X, y)
    return model


class TestMulticlass:
    def test_classes_discovered(self, fitted):
        np.testing.assert_array_equal(fitted.classes_, [0.0, 1.0, 2.0])
        assert fitted.n_classes_ == 3

    def test_accuracy(self, fitted, three_class_data):
        X, y = three_class_data
        acc = np.mean(fitted.predict(X) == y)
        assert acc > 0.85

    def test_proba_normalized(self, fitted, three_class_data):
        X, _ = three_class_data
        proba = fitted.predict_proba(X[:100])
        assert proba.shape == (100, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
        assert proba.min() >= 0.0

    def test_predict_is_argmax(self, fitted, three_class_data):
        X, _ = three_class_data
        proba = fitted.predict_proba(X[:50])
        labels = fitted.predict(X[:50])
        np.testing.assert_array_equal(labels, fitted.classes_[np.argmax(proba, 1)])

    def test_per_class_forest_protocol(self, fitted):
        """Each per-class forest is GEF-explainable (forest protocol)."""
        forest = fitted.forest_for_class(1.0)
        assert forest.trees_
        assert forest.n_features_ == 3
        assert callable(forest.predict_raw)

    def test_per_class_forest_explainable_by_gef(self, fitted):
        from repro.core import GEF

        forest = fitted.forest_for_class(2.0)
        explanation = GEF(
            n_univariate=1, n_samples=2000, n_splines=8, random_state=0
        ).explain(forest)
        # Class 2 lives at high x0: its score must increase with x0.
        curve = explanation.global_explanation(n_points=30)[0]
        assert curve.features == (0,)
        assert curve.contribution[-1] > curve.contribution[0]

    def test_unknown_class_rejected(self, fitted):
        with pytest.raises(KeyError):
            fitted.forest_for_class(7.0)

    def test_binary_redirected(self):
        X = np.random.default_rng(1).uniform(size=(50, 2))
        y = (X[:, 0] > 0.5).astype(float)
        with pytest.raises(ValueError, match="binary"):
            OneVsRestGBDTClassifier(n_estimators=2).fit(X, y)

    def test_single_class_rejected(self):
        X = np.random.default_rng(2).uniform(size=(50, 2))
        with pytest.raises(ValueError):
            OneVsRestGBDTClassifier(n_estimators=2).fit(X, np.zeros(50))

    def test_unfitted(self):
        model = OneVsRestGBDTClassifier()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((2, 3)))
