"""Tests for the array-based Tree structure."""

import numpy as np
import pytest

from repro.forest import LEAF, Tree


def make_stump(feature=0, threshold=0.5, left_value=-1.0, right_value=1.0):
    """A single split with two leaves."""
    return Tree(
        feature=np.array([feature, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([threshold, 0.0, 0.0]),
        left=np.array([1, -1, -1], dtype=np.int32),
        right=np.array([2, -1, -1], dtype=np.int32),
        value=np.array([0.0, left_value, right_value]),
        gain=np.array([2.5, 0.0, 0.0]),
        n_samples=np.array([10, 6, 4], dtype=np.int64),
    )


def make_two_level():
    """Root splits on x0, left child splits on x1."""
    return Tree(
        feature=np.array([0, 1, LEAF, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.5, 0.25, 0.0, 0.0, 0.0]),
        left=np.array([1, 3, -1, -1, -1], dtype=np.int32),
        right=np.array([2, 4, -1, -1, -1], dtype=np.int32),
        value=np.array([0.0, 0.0, 3.0, 1.0, 2.0]),
        gain=np.array([4.0, 1.5, 0.0, 0.0, 0.0]),
        n_samples=np.array([12, 8, 4, 5, 3], dtype=np.int64),
    )


class TestTreeStructure:
    def test_counts(self):
        tree = make_two_level()
        assert tree.n_nodes == 5
        assert tree.n_leaves == 3
        assert tree.max_depth == 2

    def test_single_leaf(self):
        tree = Tree.single_leaf(7.0, n_samples=3)
        assert tree.n_leaves == 1
        assert tree.predict(np.zeros((4, 2))).tolist() == [7.0] * 4

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Tree(
                feature=np.array([LEAF], dtype=np.int32),
                threshold=np.array([0.0, 1.0]),
                left=np.array([-1], dtype=np.int32),
                right=np.array([-1], dtype=np.int32),
                value=np.array([0.0]),
                gain=np.array([0.0]),
                n_samples=np.array([1], dtype=np.int64),
            )

    def test_cover_defaults_to_n_samples(self):
        tree = make_stump()
        np.testing.assert_array_equal(tree.cover, tree.n_samples.astype(float))

    def test_used_features(self):
        assert make_two_level().used_features() == {0, 1}


class TestTreePrediction:
    def test_stump_routing(self):
        tree = make_stump(threshold=0.5)
        X = np.array([[0.4], [0.5], [0.6]])
        # x <= threshold goes left (including equality).
        np.testing.assert_array_equal(tree.predict(X), [-1.0, -1.0, 1.0])

    def test_two_level_routing(self):
        tree = make_two_level()
        X = np.array(
            [[0.4, 0.2], [0.4, 0.3], [0.6, 0.0]]
        )
        np.testing.assert_array_equal(tree.predict(X), [1.0, 2.0, 3.0])

    def test_apply_returns_leaf_ids(self):
        tree = make_two_level()
        leaves = tree.apply(np.array([[0.4, 0.2], [0.9, 0.9]]))
        assert leaves.tolist() == [3, 2]

    def test_decision_path(self):
        tree = make_two_level()
        assert tree.decision_path(np.array([0.4, 0.2])) == [0, 1, 3]
        assert tree.decision_path(np.array([0.9, 0.9])) == [0, 2]

    def test_predict_1d_input(self):
        tree = make_stump()
        assert tree.predict(np.array([0.1])) == -1.0


class TestTreeIntrospection:
    def test_split_thresholds(self):
        tree = make_two_level()
        per_feature = tree.split_thresholds(n_features=3)
        assert per_feature[0].tolist() == [0.5]
        assert per_feature[1].tolist() == [0.25]
        assert per_feature[2].size == 0

    def test_feature_gains(self):
        tree = make_two_level()
        gains = tree.feature_gains(n_features=3)
        np.testing.assert_allclose(gains, [4.0, 1.5, 0.0])

    def test_internal_nodes(self):
        assert list(make_two_level().internal_nodes()) == [0, 1]


class TestTreeSerialization:
    def test_round_trip(self):
        tree = make_two_level()
        clone = Tree.from_dict(tree.to_dict())
        X = np.random.default_rng(0).uniform(0, 1, (50, 2))
        np.testing.assert_array_equal(tree.predict(X), clone.predict(X))
        np.testing.assert_array_equal(tree.gain, clone.gain)
        np.testing.assert_array_equal(tree.n_samples, clone.n_samples)

    def test_dict_is_json_safe(self):
        import json

        payload = json.dumps(make_two_level().to_dict())
        clone = Tree.from_dict(json.loads(payload))
        assert clone.n_nodes == 5
