"""Tests for model-selection utilities (splits, CV, grid search)."""

import numpy as np
import pytest

from repro.forest import (
    GradientBoostingRegressor,
    GridSearch,
    cross_val_score,
    kfold_indices,
    train_test_split,
)
from repro.metrics import r2_score


class TestTrainTestSplit:
    def test_partition_sizes(self):
        X = np.arange(100.0)[:, None]
        y = np.arange(100.0)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_te) == 25 and len(X_tr) == 75
        assert len(y_te) == 25 and len(y_tr) == 75

    def test_partition_is_disjoint_and_complete(self):
        X = np.arange(50.0)[:, None]
        y = np.arange(50.0)
        X_tr, X_te, _, _ = train_test_split(X, y, random_state=1)
        together = np.sort(np.concatenate([X_tr.ravel(), X_te.ravel()]))
        np.testing.assert_array_equal(together, np.arange(50.0))

    def test_rows_stay_aligned(self):
        X = np.arange(40.0)[:, None]
        y = np.arange(40.0) * 10
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, random_state=2)
        np.testing.assert_array_equal(X_tr.ravel() * 10, y_tr)
        np.testing.assert_array_equal(X_te.ravel() * 10, y_te)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(10), test_size=1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(9))


class TestKFold:
    def test_folds_partition_everything(self):
        folds = kfold_indices(23, n_splits=5, random_state=0)
        assert len(folds) == 5
        all_valid = np.sort(np.concatenate([v for _, v in folds]))
        np.testing.assert_array_equal(all_valid, np.arange(23))

    def test_train_and_valid_disjoint(self):
        for train, valid in kfold_indices(30, n_splits=3, random_state=1):
            assert len(np.intersect1d(train, valid)) == 0
            assert len(train) + len(valid) == 30

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            kfold_indices(3, n_splits=5)

    def test_min_splits(self):
        with pytest.raises(ValueError):
            kfold_indices(10, n_splits=1)


class TestCrossValAndGrid:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (400, 3))
        y = 2 * X[:, 0] + rng.normal(0, 0.05, 400)
        return X, y

    def test_cross_val_score_shape(self, data):
        X, y = data
        scores = cross_val_score(
            lambda: GradientBoostingRegressor(n_estimators=10, random_state=0),
            X,
            y,
            r2_score,
            n_splits=3,
            random_state=0,
        )
        assert scores.shape == (3,)
        assert np.all(scores > 0.5)

    def test_grid_search_prefers_more_trees(self, data):
        X, y = data
        search = GridSearch(
            GradientBoostingRegressor,
            {"n_estimators": [1, 40], "random_state": [0]},
            r2_score,
            n_splits=3,
            random_state=0,
        )
        result = search.run(X, y)
        assert result.best_params["n_estimators"] == 40
        assert len(result.all_results) == 2
        assert result.best_score == max(s for _, s in result.all_results)

    def test_empty_grid(self, data):
        X, y = data
        search = GridSearch(
            GradientBoostingRegressor, {"n_estimators": []}, r2_score
        )
        with pytest.raises(ValueError):
            search.run(X, y)
