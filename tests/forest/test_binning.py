"""Tests for repro.forest.binning.BinMapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.forest import BinMapper


class TestBinMapperBasics:
    def test_rejects_bad_max_bins(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1)
        with pytest.raises(ValueError):
            BinMapper(max_bins=256)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            BinMapper().fit(np.arange(5.0))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BinMapper().transform(np.zeros((3, 2)))

    def test_transform_rejects_wrong_width(self):
        mapper = BinMapper().fit(np.random.default_rng(0).normal(size=(50, 3)))
        with pytest.raises(ValueError):
            mapper.transform(np.zeros((5, 4)))

    def test_few_distinct_values_get_one_bin_each(self):
        X = np.array([[0.0], [1.0], [2.0], [1.0], [0.0]])
        mapper = BinMapper().fit(X)
        # 3 distinct values -> 2 midpoint boundaries -> 3 bins.
        assert mapper.n_bins_[0] == 3
        binned = mapper.transform(X)
        assert sorted(np.unique(binned[:, 0]).tolist()) == [0, 1, 2]

    def test_constant_feature_single_bin(self):
        X = np.full((20, 1), 3.14)
        mapper = BinMapper().fit(X)
        assert mapper.n_bins_[0] == 1
        assert mapper.transform(X).max() == 0

    def test_many_distinct_values_capped(self):
        X = np.arange(10_000, dtype=float)[:, None]
        mapper = BinMapper(max_bins=255).fit(X)
        assert mapper.n_bins_[0] <= 255

    def test_bin_threshold_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 2))
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X)
        # Splitting "after bin b" must agree with the raw threshold test.
        for feature in range(2):
            for b in range(len(mapper.bin_edges_[feature])):
                threshold = mapper.bin_threshold(feature, b)
                left_by_bin = binned[:, feature] <= b
                left_by_raw = X[:, feature] <= threshold
                np.testing.assert_array_equal(left_by_bin, left_by_raw)

    def test_bin_threshold_out_of_range(self):
        mapper = BinMapper().fit(np.array([[0.0], [1.0]]))
        with pytest.raises(IndexError):
            mapper.bin_threshold(0, 5)

    def test_value_equal_to_edge_goes_left(self):
        X = np.array([[0.0], [1.0], [2.0]])
        mapper = BinMapper().fit(X)
        edge = mapper.bin_edges_[0][0]
        binned = mapper.transform(np.array([[edge]]))
        assert binned[0, 0] == 0


class TestBinMapperProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 200), st.integers(1, 4)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_binning_is_monotone(self, X):
        """Larger raw values never land in a smaller bin."""
        mapper = BinMapper(max_bins=32).fit(X)
        binned = mapper.transform(X)
        for j in range(X.shape[1]):
            order = np.argsort(X[:, j], kind="stable")
            assert np.all(np.diff(binned[order, j].astype(int)) >= 0)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 100), st.integers(1, 3)),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bins_within_bounds(self, X):
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X)
        for j in range(X.shape[1]):
            assert binned[:, j].max() < mapper.n_bins_[j]

    @given(st.integers(2, 255))
    @settings(max_examples=20, deadline=None)
    def test_edges_strictly_increasing(self, max_bins):
        rng = np.random.default_rng(max_bins)
        X = rng.normal(size=(300, 1))
        mapper = BinMapper(max_bins=max_bins).fit(X)
        edges = mapper.bin_edges_[0]
        assert np.all(np.diff(edges) > 0)
