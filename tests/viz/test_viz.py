"""Tests for the ASCII renderers and CSV export."""

import csv

import numpy as np
import pytest

from repro.viz import (
    bar_chart,
    export_series,
    export_table,
    heatmap,
    line_chart,
    multi_line_chart,
    rug,
)


class TestLineCharts:
    def test_line_chart_contains_axes_and_title(self):
        x = np.linspace(0, 1, 30)
        out = line_chart(x, np.sin(x), title="sine")
        assert "sine" in out
        assert "+" in out and "|" in out

    def test_multi_line_distinct_symbols(self):
        x = np.linspace(0, 1, 20)
        out = multi_line_chart(x, {"a": x, "b": 1 - x})
        assert "* a" in out and "o b" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_line_chart(np.arange(3.0), {"a": np.arange(4.0)})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            multi_line_chart(np.arange(3.0), {})

    def test_axis_labels_show_ranges(self):
        x = np.linspace(5, 9, 10)
        out = line_chart(x, x * 2)
        assert "5" in out and "9" in out


class TestBarChart:
    def test_magnitudes_scale(self):
        out = bar_chart(["big", "small"], np.array([10.0, 1.0]))
        lines = out.splitlines()
        assert lines[0].count("+") > lines[1].count("+")

    def test_negative_values_marked(self):
        out = bar_chart(["neg"], np.array([-5.0]))
        assert "-" in out

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([1.0, 2.0]))


class TestHeatmap:
    def test_contains_labels_and_range(self):
        m = np.array([[0.0, 1.0], [2.0, 3.0]])
        out = heatmap(m, row_labels=["r0", "r1"], col_labels=["c0", "c1"])
        assert "r0" in out and "c1" in out
        assert "range" in out

    def test_handles_nan(self):
        m = np.array([[0.0, np.nan]])
        out = heatmap(m)
        assert "nan" in out


class TestScatterChart:
    def test_points_rendered(self):
        from repro.viz import scatter_chart

        rng = np.random.default_rng(0)
        out = scatter_chart(rng.uniform(size=40), rng.uniform(size=40))
        assert "." in out

    def test_overlay_curve(self):
        from repro.viz import scatter_chart

        x = np.linspace(0, 1, 30)
        out = scatter_chart(
            x, x**2, overlay=(x, x**2), title="dependence"
        )
        assert "*" in out
        assert "overlay" in out
        assert "dependence" in out

    def test_length_mismatch(self):
        from repro.viz import scatter_chart

        with pytest.raises(ValueError):
            scatter_chart(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            scatter_chart(
                np.arange(3.0), np.arange(3.0),
                overlay=(np.arange(2.0), np.arange(3.0)),
            )


class TestRug:
    def test_ticks_present(self):
        out = rug(np.array([0.0, 0.5, 1.0]), 0.0, 1.0, width=21, label="x")
        assert out.count("|") >= 2
        assert out.strip().startswith("x")


class TestExport:
    def test_series_round_trip(self, tmp_path):
        path = export_series(
            tmp_path / "fig.csv", {"k": np.array([1, 2]), "rmse": np.array([0.5, 0.4])}
        )
        with path.open() as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["k", "rmse"]
        assert len(rows) == 3

    def test_series_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            export_series(
                tmp_path / "bad.csv",
                {"a": np.array([1.0]), "b": np.array([1.0, 2.0])},
            )

    def test_series_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series(tmp_path / "bad.csv", {})

    def test_table_round_trip(self, tmp_path):
        path = export_table(
            tmp_path / "tab.csv", ["metric", "value"], [["ap", 0.45], ["sd", 0.17]]
        )
        with path.open() as f:
            rows = list(csv.reader(f))
        assert rows[1] == ["ap", "0.45"]

    def test_table_width_check(self, tmp_path):
        with pytest.raises(ValueError):
            export_table(tmp_path / "bad.csv", ["a", "b"], [["only-one"]])

    def test_creates_parent_dirs(self, tmp_path):
        path = export_series(
            tmp_path / "deep" / "nested" / "f.csv", {"x": np.array([1.0])}
        )
        assert path.exists()
