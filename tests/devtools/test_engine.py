"""Engine mechanics: module naming, baseline round-trips, reporters."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools import (
    Finding,
    default_rules,
    filter_baselined,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    rule_catalog,
    save_baseline,
)
from repro.devtools.engine import module_name_for


def make_finding(**overrides):
    base = dict(
        file="src/repro/x.py",
        line=3,
        rule_id="float-eq",
        severity="warning",
        message="floating-point == comparison",
    )
    base.update(overrides)
    return Finding(**base)


class TestModuleNameFor:
    def test_walks_packages(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for(pkg / "mod.py") == "pkg.sub.mod"

    def test_init_collapses_to_package(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        assert module_name_for(pkg / "__init__.py") == "pkg"

    def test_loose_file_is_bare_stem(self, tmp_path):
        (tmp_path / "loose.py").write_text("")
        assert module_name_for(tmp_path / "loose.py") == "loose"


class TestLintPaths:
    def test_walks_directories_and_relativizes(self, tmp_path):
        sub = tmp_path / "src"
        sub.mkdir()
        (sub / "_a.py").write_text("def f(x=[]):\n    return x\n")
        (sub / "_b.py").write_text("def g(y={}):\n    return y\n")
        cache = sub / "__pycache__"
        cache.mkdir()
        (cache / "_c.py").write_text("def h(z=[]):\n    return z\n")
        findings = lint_paths([sub], default_rules(), root=tmp_path)
        assert [f.file for f in findings] == ["src/_a.py", "src/_b.py"]
        assert all(f.rule_id == "mutable-default" for f in findings)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [make_finding(), make_finding(file="src/repro/y.py", line=9)]
        save_baseline(path, findings, reasons={
            findings[0].baseline_key: "legacy sentinel"
        })
        entries = load_baseline(path)
        assert len(entries) == 2
        by_file = {e["file"]: e for e in entries}
        assert by_file["src/repro/x.py"]["reason"] == "legacy sentinel"
        assert "line" not in by_file["src/repro/x.py"]  # line-independent keys

    def test_absent_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1, "entries": [{"file": "a.py", "rule_id": "x"}]
        }))
        with pytest.raises(ValueError, match="message"):
            load_baseline(path)

    def test_filter_splits_fresh_and_stranded(self, tmp_path):
        path = tmp_path / "baseline.json"
        old = make_finding(message="grandfathered")
        save_baseline(path, [old])
        entries = load_baseline(path)
        current = [old, make_finding(message="brand new")]
        fresh, stranded = filter_baselined(current, entries)
        assert [f.message for f in fresh] == ["brand new"]
        assert stranded == []
        # The grandfathered finding is fixed: its entry strands.
        fresh, stranded = filter_baselined([], entries)
        assert fresh == []
        assert [e["message"] for e in stranded] == ["grandfathered"]

    def test_line_changes_do_not_invalidate(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [make_finding(line=3)])
        moved = make_finding(line=300)
        fresh, stranded = filter_baselined([moved], load_baseline(path))
        assert fresh == [] and stranded == []


class TestReporters:
    def test_text_report_format(self):
        out = render_text([make_finding()], baselined=2, stranded=0)
        assert "src/repro/x.py:3: warning: [float-eq]" in out
        assert "1 finding(s)" in out
        assert "2 baselined" in out

    def test_text_clean_summary(self):
        out = render_text([], baselined=0, stranded=0)
        assert out.startswith("clean:")

    def test_text_stranded_hint(self):
        out = render_text([], baselined=0, stranded=3)
        assert "--update-baseline" in out

    def test_json_schema(self):
        doc = json.loads(render_json(
            [make_finding(), make_finding(rule_id="global-state",
                                          severity="error",
                                          message="bare global")],
            baselined=1,
            stranded=2,
        ))
        assert doc["version"] == 1
        assert doc["counts"] == {"error": 1, "warning": 1}
        assert doc["baselined"] == 1
        assert doc["stranded"] == 2
        assert len(doc["findings"]) == 2
        for item in doc["findings"]:
            assert set(item) == {"file", "line", "rule_id", "severity",
                                 "message"}


class TestRuleCatalog:
    def test_catalog_names_all_ten_rules(self):
        ids = {rule_id for rule_id, _, _ in rule_catalog()}
        assert ids == {
            "rng-global-state",
            "global-state",
            "mutable-default",
            "float-eq",
            "broad-except",
            "missing-all",
            "undocumented-public",
            "shadowed-builtin",
            "raise-outside-taxonomy",
            "adhoc-timing",
        }

    def test_catalog_severities_valid(self):
        for rule_id, severity, description in rule_catalog():
            assert severity in ("error", "warning")
            assert description
