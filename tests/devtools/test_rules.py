"""Per-rule fixture tests: each rule fires on its target pattern and
stays quiet on the closest legitimate code."""

from __future__ import annotations

import textwrap

from repro.devtools import default_rules, lint_file


def lint_source(tmp_path, source, registry=None, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, default_rules(registry=registry))


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRngGlobalState:
    def test_flags_np_random_seed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            np.random.seed(0)
            """,
        )
        assert "rng-global-state" in rule_ids(findings)

    def test_flags_legacy_draws(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy
            x = numpy.random.uniform(0, 1, 10)
            """,
        )
        assert "rng-global-state" in rule_ids(findings)

    def test_flags_legacy_import(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from numpy.random import rand
            """,
        )
        assert "rng-global-state" in rule_ids(findings)

    def test_allows_generator_api(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            from numpy.random import default_rng, Generator

            def draw(rng: Generator):
                local = np.random.default_rng(0)
                return local.uniform() + rng.uniform()
            """,
        )
        assert "rng-global-state" not in rule_ids(findings)


class TestGlobalState:
    def test_flags_bare_global(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            _counter = 0

            def bump():
                global _counter
                _counter += 1
            """,
        )
        assert rule_ids(findings).count("global-state") >= 1

    def test_flags_module_level_mutable(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            _cache = {}
            """,
        )
        assert "global-state" in rule_ids(findings)

    def test_registered_name_is_clean(self, tmp_path):
        registry = {("pkgmod", "_cache"): "lock:_lock"}
        findings = lint_source(
            tmp_path,
            """
            import threading
            _lock = threading.Lock()
            _cache = {}
            """,
            registry=registry,
            name="pkgmod.py",
        )
        assert "global-state" not in rule_ids(findings)

    def test_dunder_assignments_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["x"]

            def x():
                "doc"
            """,
        )
        assert "global-state" not in rule_ids(findings)

    def test_function_local_mutable_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def build():
                acc = {}
                return acc
            """,
        )
        assert "global-state" not in rule_ids(findings)


class TestMutableDefault:
    def test_flags_list_and_dict_defaults(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(items=[], opts={}):
                return items, opts
            """,
        )
        assert rule_ids(findings).count("mutable-default") == 2

    def test_flags_kwonly_and_call_defaults(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(*, acc=dict()):
                return acc
            """,
        )
        assert "mutable-default" in rule_ids(findings)

    def test_none_and_tuple_defaults_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(items=None, shape=(2, 3), label="x"):
                return items, shape, label
            """,
        )
        assert "mutable-default" not in rule_ids(findings)


class TestFloatEquality:
    def test_flags_float_eq_and_ne(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(x):
                return x == 0.5 or x != -1.0
            """,
        )
        assert rule_ids(findings).count("float-eq") == 2

    def test_int_comparison_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(n):
                return n == 0
            """,
        )
        assert "float-eq" not in rule_ids(findings)

    def test_waiver_pragma_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(x):
                return x == 0.0  # repro: allow(float-eq) exact sentinel
            """,
        )
        assert "float-eq" not in rule_ids(findings)


class TestBroadExcept:
    def test_flags_bare_except(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """,
        )
        assert "broad-except" in rule_ids(findings)

    def test_flags_swallowed_exception(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
            """,
        )
        assert "broad-except" in rule_ids(findings)

    def test_reraising_broad_handler_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except Exception as exc:
                    raise RuntimeError("context") from exc
            """,
        )
        assert "broad-except" not in rule_ids(findings)

    def test_narrow_handler_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except ValueError:
                    return 0
            """,
        )
        assert "broad-except" not in rule_ids(findings)


class TestMissingAll:
    def test_flags_public_module_without_all(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def helper():
                "doc"
            """,
            name="api.py",
        )
        assert "missing-all" in rule_ids(findings)

    def test_private_module_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def helper():
                "doc"
            """,
            name="_impl.py",
        )
        assert "missing-all" not in rule_ids(findings)

    def test_module_with_all_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["helper"]

            def helper():
                "doc"
            """,
            name="api.py",
        )
        assert "missing-all" not in rule_ids(findings)


class TestUndocumentedPublic:
    def test_flags_exported_def_without_docstring(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["f", "C"]

            def f():
                return 1

            class C:
                pass
            """,
        )
        assert rule_ids(findings).count("undocumented-public") == 2

    def test_documented_exports_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["f"]

            def f():
                "Does the thing."
                return 1

            def _private():
                return 2
            """,
        )
        assert "undocumented-public" not in rule_ids(findings)


class TestShadowedBuiltin:
    def test_flags_builtin_parameter_names(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(list, type=None):
                return list, type
            """,
        )
        assert rule_ids(findings).count("shadowed-builtin") == 2

    def test_ordinary_names_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(values, kind=None):
                return values, kind
            """,
        )
        assert "shadowed-builtin" not in rule_ids(findings)


class TestEngineBasics:
    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rule_ids(findings) == ["syntax-error"]
        assert findings[0].severity == "error"

    def test_findings_sorted_and_carry_positions(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(a=[]):
                return a == 0.5
            """,
        )
        assert {"mutable-default", "float-eq"} <= set(rule_ids(findings))
        assert findings == sorted(
            findings, key=lambda f: (f.line, f.rule_id, f.message)
        )
        for f in findings:
            assert f.line >= 1
            assert f.severity in ("error", "warning")

    def test_multi_rule_pragma(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(x, a=[]):  # repro: allow(mutable-default, shadowed-builtin) fixture
                return a
            """,
        )
        assert "mutable-default" not in rule_ids(findings)


class TestRaiseOutsideTaxonomy:
    def lint_pipeline_module(self, tmp_path, source):
        """Lint a snippet placed at repro/core/sampling.py so the module
        name resolves inside the rule's pipeline scope."""
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        path = pkg / "sampling.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_file(path, default_rules())

    def test_flags_valueerror_in_pipeline_module(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            def f(x):
                raise ValueError("bad")
            """,
        )
        assert "raise-outside-taxonomy" in rule_ids(findings)

    def test_flags_bare_runtimeerror_name(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            def f():
                raise RuntimeError
            """,
        )
        assert "raise-outside-taxonomy" in rule_ids(findings)

    def test_taxonomy_raises_fine(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            from repro.core.errors import SamplingError

            def f(x):
                if x < 0:
                    raise SamplingError("bad domain")
                raise
            """,
        )
        assert "raise-outside-taxonomy" not in rule_ids(findings)

    def test_non_pipeline_module_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(x):
                raise ValueError("fine outside the pipeline")
            """,
        )
        assert "raise-outside-taxonomy" not in rule_ids(findings)

    def test_waiver_pragma_suppresses(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            def f(x):
                raise ValueError("x")  # repro: allow(raise-outside-taxonomy) harness misuse
            """,
        )
        assert "raise-outside-taxonomy" not in rule_ids(findings)


class TestAdhocTiming:
    def lint_pipeline_module(self, tmp_path, source, rel="repro/core/tuning.py"):
        """Lint a snippet at a pipeline (or exempt) module path."""
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.parents:
            if parent == tmp_path:
                break
            (parent / "__init__.py").write_text("")
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_file(path, default_rules())

    def test_flags_perf_counter_attribute(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            import time

            def f():
                return time.perf_counter()
            """,
        )
        assert "adhoc-timing" in rule_ids(findings)

    def test_flags_monotonic_from_import(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            from time import monotonic
            """,
        )
        assert "adhoc-timing" in rule_ids(findings)

    def test_time_sleep_is_fine(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            import time

            def f():
                time.sleep(0.1)
            """,
        )
        assert "adhoc-timing" not in rule_ids(findings)

    def test_obs_module_exempt(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            import time

            def now():
                return time.perf_counter()
            """,
            rel="repro/obs/trace.py",
        )
        assert "adhoc-timing" not in rule_ids(findings)

    def test_non_pipeline_module_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time

            def f():
                return time.monotonic()
            """,
        )
        assert "adhoc-timing" not in rule_ids(findings)

    def test_waiver_pragma_suppresses(self, tmp_path):
        findings = self.lint_pipeline_module(
            tmp_path,
            """
            import time

            def f():
                return time.perf_counter()  # repro: allow(adhoc-timing)
            """,
        )
        assert "adhoc-timing" not in rule_ids(findings)
