"""``repro check`` end-to-end: exit codes, baseline workflow, and the
tier-1 gate asserting the repo's own ``src/`` lints clean."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.devtools import load_baseline, run_check
from repro.devtools.check import BASELINE_NAME, find_project_root, main

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = "def f(items=[]):\n    return items\n"
CLEAN = '__all__ = ["f"]\n\n\ndef f(items=None):\n    "Return items."\n    return items\n'


def seed_project(tmp_path, source):
    """A throwaway project root: pyproject.toml + one source file."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    target = tmp_path / "src" / "mod.py"
    target.parent.mkdir()
    target.write_text(source)
    return target


class TestExitCodes:
    def test_violation_exits_nonzero(self, tmp_path):
        target = seed_project(tmp_path, DIRTY)
        out = io.StringIO()
        assert run_check([target], stream=out) == 1
        assert "mutable-default" in out.getvalue()

    def test_clean_exits_zero(self, tmp_path):
        target = seed_project(tmp_path, CLEAN)
        out = io.StringIO()
        assert run_check([target], stream=out) == 0
        assert out.getvalue().startswith("clean:")

    def test_baselined_violation_exits_zero(self, tmp_path):
        target = seed_project(tmp_path, DIRTY)
        out = io.StringIO()
        run_check([target], update_baseline=True, stream=out)
        out = io.StringIO()
        assert run_check([target], stream=out) == 0
        assert "baselined" in out.getvalue()

    def test_stranded_entry_fails_until_updated(self, tmp_path):
        target = seed_project(tmp_path, DIRTY)
        run_check([target], update_baseline=True, stream=io.StringIO())
        target.write_text(CLEAN)  # fix the finding; entry strands
        assert run_check([target], stream=io.StringIO()) == 1
        assert run_check(
            [target], update_baseline=True, stream=io.StringIO()
        ) == 0
        assert load_baseline(tmp_path / BASELINE_NAME) == []
        assert run_check([target], stream=io.StringIO()) == 0

    def test_json_format(self, tmp_path):
        target = seed_project(tmp_path, DIRTY)
        out = io.StringIO()
        assert run_check([target], output_format="json", stream=out) == 1
        doc = json.loads(out.getvalue())
        assert doc["version"] == 1
        assert doc["counts"]["error"] == 1
        assert "mutable-default" in {f["rule_id"] for f in doc["findings"]}


class TestCliWiring:
    def test_console_script_main(self, tmp_path, capsys):
        target = seed_project(tmp_path, DIRTY)
        assert main([str(target)]) == 1
        assert "mutable-default" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "rng-global-state" in out
        assert "float-eq" in out

    def test_repro_cli_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = seed_project(tmp_path, CLEAN)
        assert cli_main(["check", str(target)]) == 0

    def test_find_project_root(self, tmp_path):
        target = seed_project(tmp_path, CLEAN)
        assert find_project_root(target) == tmp_path


class TestRepoGate:
    """The tier-1 gate: the repo's own src/ is clean vs the baseline."""

    def test_src_lints_clean_against_committed_baseline(self):
        out = io.StringIO()
        code = run_check(
            [REPO_ROOT / "src"],
            baseline=REPO_ROOT / BASELINE_NAME,
            stream=out,
        )
        assert code == 0, f"repro check found new lint findings:\n{out.getvalue()}"

    def test_baseline_has_no_thread_safety_or_mutable_default_entries(self):
        entries = load_baseline(REPO_ROOT / BASELINE_NAME)
        banned = {"global-state", "mutable-default"}
        offending = [e for e in entries if e["rule_id"] in banned]
        assert offending == [], (
            "thread-safety and mutable-default findings must be fixed or "
            f"waived inline, never baselined: {offending}"
        )
