"""Lock-discipline pass: proving registry entries against fixture trees."""

from __future__ import annotations

from repro.devtools import GlobalEntry
from repro.devtools.analysis import check_locks

GUARDED = """\
import threading

_lock = threading.Lock()
_cache = {}


def put(key, value):
    'Doc.'
    with _lock:
        _cache[key] = value


def get(key):
    'Doc.'
    with _lock:
        return _cache.get(key)
"""


def entry(**overrides):
    base = dict(
        module="pkg.mod", name="_cache", discipline="lock", lock="_lock"
    )
    base.update(overrides)
    return GlobalEntry(**base)


class TestLockDiscipline:
    def test_guarded_module_is_clean(self, make_project):
        project = make_project({"pkg/mod.py": GUARDED})
        assert check_locks(project, [entry()]) == []

    def test_unguarded_write_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_cache = {}\n"
            "def put(key, value):\n"
            "    'Doc.'\n"
            "    _cache[key] = value\n"
        )})
        findings = check_locks(project, [entry()])
        assert [f.rule_id for f in findings] == ["lock-discipline"]
        assert "outside `with _lock:`" in findings[0].message

    def test_unguarded_rebind_with_global_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_cache = {}\n"
            "def reset():\n"
            "    'Doc.'\n"
            "    global _cache\n"
            "    _cache = {}\n"
        )})
        findings = check_locks(project, [entry()])
        assert [f.rule_id for f in findings] == ["lock-discipline"]

    def test_local_shadow_is_not_a_write(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_cache = {}\n"
            "def snapshot():\n"
            "    'Doc.'\n"
            "    _cache = {}\n"  # local rebind, no ``global``
            "    return _cache\n"
        )})
        assert check_locks(project, [entry()]) == []

    def test_mutator_method_outside_lock_is_a_write(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_cache = {}\n"
            "def wipe():\n"
            "    'Doc.'\n"
            "    _cache.clear()\n"
        )})
        findings = check_locks(project, [entry()])
        assert [f.rule_id for f in findings] == ["lock-discipline"]

    def test_missing_lock_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": "_cache = {}\n"})
        findings = check_locks(project, [entry()])
        assert [f.rule_id for f in findings] == ["lock-discipline"]
        assert "no such module-level lock" in findings[0].message

    def test_non_lock_binding_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "_lock = object()\n"
            "_cache = {}\n"
        )})
        findings = check_locks(project, [entry()])
        assert any(
            "not a module-level threading.Lock()" in f.message
            for f in findings
        )

    def test_registry_drift_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": "x = 1\n"})
        findings = check_locks(project, [entry()])
        assert [f.rule_id for f in findings] == ["lock-discipline"]
        assert "registry drift" in findings[0].message

    def test_unanalyzed_module_is_skipped(self, make_project):
        project = make_project({"pkg/mod.py": "x = 1\n"})
        assert check_locks(project, [entry(module="elsewhere.mod")]) == []


class TestAtomicReads:
    def test_unsanctioned_lockfree_read_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_cache = {}\n"
            "def peek():\n"
            "    'Doc.'\n"
            "    return _cache\n"
        )})
        findings = check_locks(project, [entry()])
        assert [f.rule_id for f in findings] == ["atomic-read"]
        assert "`peek`" in findings[0].message

    def test_sanctioned_site_is_clean(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "_cache = {}\n"
            "def peek():\n"
            "    'Doc.'\n"
            "    return _cache\n"
        )})
        assert check_locks(project, [entry(atomic_reads=("peek",))]) == []


class TestFrozenDiscipline:
    def test_untouched_frozen_global_is_clean(self, make_project):
        project = make_project({"pkg/mod.py": (
            "_TABLE = {'a': 1}\n"
            "def lookup(key):\n"
            "    'Doc.'\n"
            "    return _TABLE[key]\n"
        )})
        frozen = entry(
            name="_TABLE", discipline="frozen-after-import", lock=None
        )
        assert check_locks(project, [frozen]) == []

    def test_post_import_mutation_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "_TABLE = {'a': 1}\n"
            "def register(key, value):\n"
            "    'Doc.'\n"
            "    _TABLE[key] = value\n"
        )})
        frozen = entry(
            name="_TABLE", discipline="frozen-after-import", lock=None
        )
        findings = check_locks(project, [frozen])
        assert [f.rule_id for f in findings] == ["frozen-mutation"]
        assert "`register`" in findings[0].message


class TestCrossModuleWrites:
    def test_foreign_mutation_is_flagged(self, make_project):
        project = make_project({
            "pkg/mod.py": "_TABLE = {'a': 1}\n",
            "pkg/other.py": (
                "from pkg import mod\n"
                "def poke():\n"
                "    'Doc.'\n"
                "    mod._TABLE['b'] = 2\n"
            ),
        })
        frozen = entry(
            name="_TABLE", discipline="frozen-after-import", lock=None
        )
        findings = check_locks(project, [frozen])
        assert any(
            f.rule_id == "frozen-mutation" and "cross-module" in f.message
            for f in findings
        )

    def test_foreign_read_is_fine(self, make_project):
        project = make_project({
            "pkg/mod.py": "_TABLE = {'a': 1}\n",
            "pkg/other.py": (
                "from pkg import mod\n"
                "def peek():\n"
                "    'Doc.'\n"
                "    return mod._TABLE\n"
            ),
        })
        frozen = entry(
            name="_TABLE", discipline="frozen-after-import", lock=None
        )
        assert check_locks(project, [frozen]) == []
