"""Waiver pragmas and baseline flow for deep findings.

Deep findings ride the exact same suppression machinery as the per-file
lint rules: inline ``# repro: allow(rule)`` on the finding's line, the
file-scope ``# repro: allow-file(rule)`` pragma anywhere in the file, and
the committed baseline with stranded-entry garbage collection.
"""

from __future__ import annotations

import io

from repro.devtools import load_baseline, run_check
from repro.devtools.analysis import run_deep_passes
from repro.devtools.check import BASELINE_NAME
from repro.devtools.engine import file_waived_rules, line_waived_rules

UNSEEDED = (
    "import numpy as np\n"
    "\n"
    "__all__ = [\"mint\"]\n"
    "\n"
    "\n"
    "def mint():\n"
    "    \"Mint a generator.\"\n"
    "    return np.random.default_rng()\n"
)


class TestPragmaParsing:
    def test_file_pragma_collects_rule_ids(self):
        lines = [
            "# repro: allow-file(rng-unseeded)",
            "# repro: allow-file(layering, import-cycle)",
            "x = 1",
        ]
        assert file_waived_rules(lines) == {
            "rng-unseeded", "layering", "import-cycle"
        }

    def test_line_pragma_is_not_a_file_pragma(self):
        lines = ["x = 1  # repro: allow(float-eq)"]
        assert file_waived_rules(lines) == frozenset()
        assert "float-eq" in line_waived_rules(lines, 1)


class TestDeepWaivers:
    def test_unwaived_deep_finding_surfaces(self, tmp_path):
        (tmp_path / "mod.py").write_text(UNSEEDED)
        findings = run_deep_passes(tmp_path)
        assert [f.rule_id for f in findings] == ["rng-unseeded"]

    def test_line_waiver_suppresses_deep_finding(self, tmp_path):
        waived = UNSEEDED.replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # repro: allow(rng-unseeded)",
        )
        (tmp_path / "mod.py").write_text(waived)
        assert run_deep_passes(tmp_path) == []

    def test_file_waiver_suppresses_deep_finding(self, tmp_path):
        waived = "# repro: allow-file(rng-unseeded)\n" + UNSEEDED
        (tmp_path / "mod.py").write_text(waived)
        assert run_deep_passes(tmp_path) == []

    def test_file_waiver_is_rule_specific(self, tmp_path):
        waived = "# repro: allow-file(layering)\n" + UNSEEDED
        (tmp_path / "mod.py").write_text(waived)
        findings = run_deep_passes(tmp_path)
        assert [f.rule_id for f in findings] == ["rng-unseeded"]


class TestDeepBaselineFlow:
    def seed(self, tmp_path, source=UNSEEDED):
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        target = tmp_path / "src" / "mod.py"
        target.parent.mkdir()
        target.write_text(source)
        return target

    def test_deep_finding_fails_then_baselines(self, tmp_path):
        target = self.seed(tmp_path)
        out = io.StringIO()
        assert run_check([target], deep=True, stream=out) == 1
        assert "rng-unseeded" in out.getvalue()
        run_check(
            [target], deep=True, update_baseline=True, stream=io.StringIO()
        )
        assert run_check([target], deep=True, stream=io.StringIO()) == 0

    def test_fixing_strands_entry_until_gc(self, tmp_path):
        target = self.seed(tmp_path)
        run_check(
            [target], deep=True, update_baseline=True, stream=io.StringIO()
        )
        target.write_text(
            UNSEEDED.replace("default_rng()", "default_rng(42)")
        )
        # The stranded baseline entry fails the gate until GC'd.
        assert run_check([target], deep=True, stream=io.StringIO()) == 1
        assert run_check(
            [target], deep=True, update_baseline=True, stream=io.StringIO()
        ) == 0
        assert load_baseline(tmp_path / BASELINE_NAME) == []

    def test_shallow_run_ignores_deep_rules(self, tmp_path):
        target = self.seed(tmp_path)
        assert run_check([target], stream=io.StringIO()) == 0

    def test_file_pragma_works_through_run_check(self, tmp_path):
        target = self.seed(
            tmp_path, "# repro: allow-file(rng-unseeded)\n" + UNSEEDED
        )
        assert run_check([target], deep=True, stream=io.StringIO()) == 0
