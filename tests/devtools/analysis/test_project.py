"""The shared project graph: parsing, aliasing, and import edges."""

from __future__ import annotations

import ast


class TestModuleNaming:
    def test_modules_and_packages(self, make_project):
        project = make_project({
            "pkg/mod.py": "x = 1\n",
            "pkg/sub/leaf.py": "y = 2\n",
        })
        assert "pkg" in project.modules
        assert "pkg.mod" in project.modules
        assert "pkg.sub.leaf" in project.modules
        assert project.modules["pkg"].is_package
        assert not project.modules["pkg.mod"].is_package

    def test_syntax_error_files_are_skipped(self, make_project):
        project = make_project({
            "pkg/ok.py": "x = 1\n",
            "pkg/broken.py": "def f(:\n",
        })
        assert "pkg.ok" in project.modules
        assert "pkg.broken" not in project.modules


class TestAliases:
    def test_import_as_and_from_import(self, make_project):
        project = make_project({
            "pkg/mod.py": (
                "import numpy as np\n"
                "from threading import Lock\n"
                "import os.path\n"
            ),
        })
        info = project.modules["pkg.mod"]
        assert info.aliases["np"] == "numpy"
        assert info.aliases["Lock"] == "threading.Lock"
        # ``import a.b`` binds the top package name.
        assert info.aliases["os"] == "os"

    def test_dotted_resolves_attribute_chains(self, make_project):
        project = make_project({
            "pkg/mod.py": (
                "import numpy as np\n"
                "call = np.random.default_rng\n"
            ),
        })
        info = project.modules["pkg.mod"]
        value = info.module_assigns["call"].value
        assert info.dotted(value) == "numpy.random.default_rng"

    def test_dotted_resolves_module_level_defs(self, make_project):
        project = make_project({
            "pkg/mod.py": "def helper():\n    'Doc.'\n    return helper\n",
        })
        info = project.modules["pkg.mod"]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Return):
                assert info.dotted(node.value) == "pkg.mod.helper"
                break
        else:  # pragma: no cover - fixture guard
            raise AssertionError("no return found")


class TestImportEdges:
    def test_relative_import_resolution(self, make_project):
        project = make_project({
            "pkg/a/one.py": "from ..b import two\n",
            "pkg/b/two.py": "x = 1\n",
        })
        info = project.modules["pkg.a.one"]
        # The imported name is itself a module: the edge points at it,
        # not at the containing package.
        assert "pkg.b.two" in info.all_imports
        assert "pkg.b" not in info.all_imports

    def test_from_import_of_plain_attribute_targets_the_module(
        self, make_project
    ):
        project = make_project({
            "pkg/a.py": "from pkg.b import helper\n",
            "pkg/b.py": "def helper():\n    'Doc.'\n",
        })
        assert "pkg.b" in project.modules["pkg.a"].all_imports

    def test_lazy_imports_stay_out_of_module_imports(self, make_project):
        project = make_project({
            "pkg/a.py": (
                "import os\n"
                "def f():\n"
                "    'Doc.'\n"
                "    import json\n"
            ),
        })
        info = project.modules["pkg.a"]
        assert "os" in info.module_imports
        assert "json" in info.all_imports
        assert "json" not in info.module_imports

    def test_import_lines_anchor_findings(self, make_project):
        project = make_project({
            "pkg/a.py": "x = 1\nimport os\n",
        })
        assert project.modules["pkg.a"].import_lines["os"] == 2


class TestStructure:
    def test_enclosing_function_and_qualname(self, make_project):
        project = make_project({
            "pkg/mod.py": (
                "class C:\n"
                "    'Doc.'\n"
                "    def m(self):\n"
                "        'Doc.'\n"
                "        x = 1\n"
            ),
        })
        info = project.modules["pkg.mod"]
        assert "C.m" in info.defs
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Assign):
                func = info.enclosing_function(node)
                assert info.qualname(func) == "C.m"

    def test_defs_by_name_indexes_bare_names(self, make_project):
        project = make_project({
            "pkg/a.py": "def shared():\n    'Doc.'\n",
            "pkg/b.py": "class C:\n    'Doc.'\n    def shared(self):\n        'Doc.'\n",
        })
        sites = {
            f"{info.name}.{qual}"
            for info, qual, _ in project.defs_by_name["shared"]
        }
        assert sites == {"pkg.a.shared", "pkg.b.C.shared"}
