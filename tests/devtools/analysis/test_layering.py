"""Layering pass: forbidden architecture edges and import cycles."""

from __future__ import annotations

from repro.devtools.analysis import check_layering


def rules(findings):
    return [f.rule_id for f in findings]


class TestForbiddenEdges:
    def test_core_importing_serve_is_flagged(self, make_project):
        project = make_project({
            "repro/core/thing.py": "from repro.serve.app import App\n",
            "repro/serve/app.py": "class App:\n    'Doc.'\n",
        })
        findings = check_layering(project)
        assert "layering" in rules(findings)
        assert any("layer `core`" in f.message for f in findings)

    def test_lazy_import_is_still_a_forbidden_edge(self, make_project):
        project = make_project({
            "repro/core/thing.py": (
                "def render():\n"
                "    'Doc.'\n"
                "    from repro.viz.charts import chart\n"
                "    return chart\n"
            ),
            "repro/viz/charts.py": "def chart():\n    'Doc.'\n",
        })
        findings = check_layering(project)
        assert any(f.rule_id == "layering" for f in findings)

    def test_allowed_edge_is_clean(self, make_project):
        project = make_project({
            "repro/core/thing.py": "from repro.forest.model import F\n",
            "repro/forest/model.py": "class F:\n    'Doc.'\n",
        })
        assert check_layering(project) == []

    def test_leaf_module_importing_upward_is_flagged(self, make_project):
        project = make_project({
            "repro/obs/trace.py": "from repro.core.thing import x\n",
            "repro/core/thing.py": "x = 1\n",
        })
        findings = check_layering(project)
        assert any("layer `obs`" in f.message for f in findings)

    def test_unconstrained_layers_may_import_anything(self, make_project):
        project = make_project({
            "repro/cli/main.py": (
                "from repro.serve.app import App\n"
                "from repro.core.thing import x\n"
            ),
            "repro/serve/app.py": "class App:\n    'Doc.'\n",
            "repro/core/thing.py": "x = 1\n",
        })
        assert check_layering(project) == []

    def test_stdlib_and_thirdparty_imports_are_ignored(self, make_project):
        project = make_project({
            "repro/core/thing.py": "import os\nimport numpy as np\n",
        })
        assert check_layering(project) == []

    def test_custom_allowed_table(self, make_project):
        project = make_project({
            "repro/a/one.py": "from repro.b.two import x\n",
            "repro/b/two.py": "x = 1\n",
        })
        allowed = {"a": frozenset(), "b": frozenset()}
        findings = check_layering(project, allowed)
        assert len(findings) == 1
        assert findings[0].rule_id == "layering"
        assert check_layering(project, {"a": frozenset({"b"})}) == []


class TestImportCycles:
    def test_module_level_cycle_is_one_finding(self, make_project):
        project = make_project({
            "repro/cli/a.py": "from repro.cli.b import x\n",
            "repro/cli/b.py": "from repro.cli.a import y\n",
        })
        findings = [
            f for f in check_layering(project) if f.rule_id == "import-cycle"
        ]
        assert len(findings) == 1
        assert "repro.cli.a -> repro.cli.b -> repro.cli.a" in findings[0].message

    def test_lazy_import_breaks_the_cycle(self, make_project):
        project = make_project({
            "repro/cli/a.py": "from repro.cli.b import x\n",
            "repro/cli/b.py": (
                "def f():\n"
                "    'Doc.'\n"
                "    from repro.cli.a import y\n"
                "    return y\n"
            ),
        })
        assert check_layering(project) == []

    def test_acyclic_chain_is_clean(self, make_project):
        project = make_project({
            "repro/cli/a.py": "from repro.cli.b import x\n",
            "repro/cli/b.py": "from repro.cli.c import x\n",
            "repro/cli/c.py": "x = 1\n",
        })
        assert check_layering(project) == []
