"""RNG-determinism taint pass: seeded vs unseeded generator creation."""

from __future__ import annotations

from repro.devtools.analysis import check_rng_flow


def rules(findings):
    return [f.rule_id for f in findings]


class TestUnseeded:
    def test_no_argument_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    'Doc.'\n"
            "    return np.random.default_rng()\n"
        )})
        findings = check_rng_flow(project)
        assert rules(findings) == ["rng-unseeded"]
        assert "no seed argument" in findings[0].message

    def test_literal_none_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    'Doc.'\n"
            "    return np.random.default_rng(None)\n"
        )})
        assert rules(check_rng_flow(project)) == ["rng-unseeded"]

    def test_unprovable_local_is_flagged(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import time\n"
            "import numpy as np\n"
            "def f():\n"
            "    'Doc.'\n"
            "    seed = time.time_ns()\n"
            "    return np.random.default_rng(seed)\n"
        )})
        assert rules(check_rng_flow(project)) == ["rng-unseeded"]


class TestSeeded:
    def test_int_literal(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
        )})
        assert check_rng_flow(project) == []

    def test_random_state_parameter(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f(random_state):\n"
            "    'Doc.'\n"
            "    return np.random.default_rng(random_state)\n"
        )})
        assert check_rng_flow(project) == []

    def test_keyword_seed_argument(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f(seed):\n"
            "    'Doc.'\n"
            "    return np.random.default_rng(seed=seed)\n"
        )})
        assert check_rng_flow(project) == []

    def test_spawn_key_list_of_seeded_parts(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f(seed):\n"
            "    'Doc.'\n"
            "    out = []\n"
            "    for i in range(3):\n"
            "        out.append(np.random.default_rng([seed, i]))\n"
            "    return out\n"
        )})
        assert check_rng_flow(project) == []

    def test_arithmetic_on_seed(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f(seed, attempt):\n"
            "    'Doc.'\n"
            "    return np.random.default_rng(seed + 1000 * attempt)\n"
        )})
        assert check_rng_flow(project) == []

    def test_local_chain_of_seeded_assignments(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f(random_state):\n"
            "    'Doc.'\n"
            "    seed = random_state\n"
            "    derived = seed + 1\n"
            "    return np.random.default_rng(derived)\n"
        )})
        assert check_rng_flow(project) == []

    def test_attribute_of_self(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "class C:\n"
            "    'Doc.'\n"
            "    def f(self):\n"
            "        'Doc.'\n"
            "        return np.random.default_rng(self.seed)\n"
        )})
        assert check_rng_flow(project) == []

    def test_module_level_int_constant(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "DEFAULT_SEED = 7\n"
            "def f():\n"
            "    'Doc.'\n"
            "    return np.random.default_rng(DEFAULT_SEED)\n"
        )})
        assert check_rng_flow(project) == []

    def test_derivation_from_passed_rng(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f(rng):\n"
            "    'Doc.'\n"
            "    return np.random.default_rng(rng.integers(0, 2**31))\n"
        )})
        assert check_rng_flow(project) == []

    def test_cyclic_local_assignment_terminates_unseeded(self, make_project):
        project = make_project({"pkg/mod.py": (
            "import numpy as np\n"
            "def f():\n"
            "    'Doc.'\n"
            "    a = a\n"
            "    return np.random.default_rng(a)\n"
        )})
        assert rules(check_rng_flow(project)) == ["rng-unseeded"]

    def test_unrelated_calls_are_ignored(self, make_project):
        project = make_project({"pkg/mod.py": (
            "def default_rng():\n"
            "    'Doc: a local helper that shares the numpy name.'\n"
            "x = default_rng()\n"
        )})
        # ``pkg.mod.default_rng`` is not ``numpy.random.default_rng``.
        assert check_rng_flow(project) == []
