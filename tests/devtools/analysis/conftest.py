"""Shared fixture helpers for the whole-program analysis pass tests.

Every test builds a throwaway source tree under ``tmp_path`` and parses
it statically with :func:`repro.devtools.analysis.build_project` —
nothing from a fixture tree is ever imported or executed.
"""

from __future__ import annotations

import pytest

from repro.devtools.analysis import build_project


@pytest.fixture
def make_project(tmp_path):
    """Write ``{relative_path: source}`` files and parse them as a project.

    Package ``__init__.py`` files are created implicitly for every
    directory so fixture trees only spell out the interesting modules.
    """

    def _make(files: dict[str, str]):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            cursor = tmp_path
            for part in target.parent.relative_to(tmp_path).parts:
                cursor = cursor / part
                init = cursor / "__init__.py"
                if not init.exists():
                    init.write_text("")
            target.write_text(source)
        return build_project(tmp_path)

    return _make
