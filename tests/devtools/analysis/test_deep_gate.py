"""Tier-1 gate: the repo's own source passes ``repro check --deep``.

The whole-program passes are only worth their keep if the committed tree
actually satisfies them with an *empty* baseline — no grandfathered
violations — and fast enough to sit in CI unconditionally.
"""

from __future__ import annotations

import io
import time
from pathlib import Path

from repro.devtools import load_baseline, run_check
from repro.devtools.analysis import (
    build_project,
    deep_pass_catalog,
    run_deep_passes,
)
from repro.devtools.rules import rule_catalog

REPO_ROOT = Path(__file__).resolve().parents[3]


class TestDeepGate:
    def test_repo_source_is_deep_clean(self):
        out = io.StringIO()
        start = time.perf_counter()
        code = run_check([REPO_ROOT / "src"], deep=True, stream=out)
        elapsed = time.perf_counter() - start
        assert code == 0, out.getvalue()
        # The deep gate must stay cheap enough to run unconditionally in
        # CI (the check-deep job budgets 10s of wall time).
        assert elapsed < 10.0, f"repro check --deep took {elapsed:.1f}s"

    def test_committed_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / "lint_baseline.json") == []

    def test_deep_passes_alone_are_clean(self):
        assert run_deep_passes(REPO_ROOT) == []


class TestCatalog:
    def test_deep_rule_ids_are_disjoint_from_lint_rules(self):
        lint_ids = {rule_id for rule_id, _, _ in rule_catalog()}
        deep_ids = {rule_id for rule_id, _, _ in deep_pass_catalog()}
        assert not lint_ids & deep_ids

    def test_deep_catalog_covers_every_pass_rule(self):
        assert {rule_id for rule_id, _, _ in deep_pass_catalog()} == {
            "lock-discipline", "atomic-read", "frozen-mutation",
            "rng-unseeded", "serve-status-coverage",
            "layering", "import-cycle",
        }


class TestGraphScale:
    def test_single_parse_covers_the_whole_tree(self):
        project = build_project(REPO_ROOT / "src", root=REPO_ROOT)
        names = set(project.modules)
        # Spot-check the layers the passes reason about.
        for expected in (
            "repro.core.errors", "repro.serve.app", "repro.forest.engines",
            "repro.devtools.registry", "repro._rng", "repro._ascii",
        ):
            assert expected in names
        assert all(info.path.startswith("src/") for info in project.modules.values())
