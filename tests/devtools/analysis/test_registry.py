"""The typed thread-safety registry: GlobalEntry validation and lookup."""

from __future__ import annotations

import pytest

from repro.devtools import THREAD_SAFETY_REGISTRY, GlobalEntry, get_entry, is_registered
from repro.devtools.registry import DISCIPLINES


class TestGlobalEntryValidation:
    def test_unknown_discipline_is_rejected(self):
        with pytest.raises(ValueError, match="unregistered discipline"):
            GlobalEntry(module="m", name="g", discipline="vibes")

    def test_lock_discipline_requires_lock_name(self):
        with pytest.raises(ValueError, match="must be given together"):
            GlobalEntry(module="m", name="g", discipline="lock")

    def test_frozen_discipline_rejects_lock_name(self):
        with pytest.raises(ValueError, match="must be given together"):
            GlobalEntry(
                module="m", name="g",
                discipline="frozen-after-import", lock="_lock",
            )

    def test_atomic_reads_only_for_lock_discipline(self):
        with pytest.raises(ValueError, match="atomic_reads only applies"):
            GlobalEntry(
                module="m", name="g",
                discipline="frozen-after-import", atomic_reads=("f",),
            )

    def test_entries_are_immutable(self):
        entry = GlobalEntry(
            module="m", name="g", discipline="lock", lock="_lock"
        )
        with pytest.raises(AttributeError):
            entry.lock = "_other"

    def test_legacy_string_forms(self):
        locked = GlobalEntry(
            module="m", name="g", discipline="lock", lock="_lock"
        )
        frozen = GlobalEntry(
            module="m", name="g", discipline="frozen-after-import"
        )
        assert locked.legacy == "lock:_lock"
        assert frozen.legacy == "frozen-after-import"


class TestCommittedRegistry:
    def test_keys_match_entry_identity(self):
        for (module, name), entry in THREAD_SAFETY_REGISTRY.items():
            assert entry.module == module
            assert entry.name == name

    def test_every_entry_has_a_rationale(self):
        for entry in THREAD_SAFETY_REGISTRY.values():
            assert entry.rationale, f"{entry.module}.{entry.name}"

    def test_disciplines_are_registered(self):
        for entry in THREAD_SAFETY_REGISTRY.values():
            assert entry.discipline in DISCIPLINES


class TestLookup:
    def test_is_registered_backward_compat(self):
        assert is_registered("repro.forest.engines", "_engine")
        assert not is_registered("repro.forest.engines", "_nonexistent")

    def test_get_entry(self):
        entry = get_entry("repro.forest.engines", "_engine")
        assert entry is not None
        assert entry.discipline == "lock"
        assert entry.lock == "_state_lock"
        assert get_entry("nowhere", "nothing") is None
