"""Exception-flow pass: typed-error -> status coverage on the serve path."""

from __future__ import annotations

from repro.devtools.analysis import check_exception_flow

ERRORS = """\
class Base(Exception):
    'Doc.'


class AError(Base):
    'Doc.'


class BError(AError):
    'Doc.'


class Unrelated(Exception):
    'Doc.'
"""


def check(project):
    return check_exception_flow(
        project,
        errors_module="fx.core.errors",
        app_module="fx.serve.app",
        root_qualname="App.handle",
        taxonomy_root="Base",
    )


class TestCoverage:
    def test_fully_mapped_tree_is_clean(self, make_project):
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/serve/app.py": (
                "from fx.core.errors import AError, Base\n"
                "ERROR_STATUS = {AError: (400, 'bad'), Base: (500, None)}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        raise AError('x')\n"
            ),
        })
        assert check(project) == []

    def test_raisable_type_without_entry_is_flagged(self, make_project):
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/serve/app.py": (
                "from fx.core.errors import AError, Base\n"
                "ERROR_STATUS = {Base: (500, None)}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        raise AError('x')\n"
            ),
        })
        findings = check(project)
        assert [f.rule_id for f in findings] == ["serve-status-coverage"]
        assert "`AError`" in findings[0].message

    def test_base_class_entry_does_not_cover_subclass(self, make_project):
        # Exact-class coverage is deliberate: a new taxonomy type must
        # force a conscious status decision, not inherit a generic 500.
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/serve/app.py": (
                "from fx.core.errors import AError, BError, Base\n"
                "ERROR_STATUS = {AError: (400, 'bad'), Base: (500, None)}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        raise BError('x')\n"
            ),
        })
        findings = check(project)
        assert any("`BError`" in f.message for f in findings)


class TestReachability:
    def test_raise_in_called_helper_module_is_found(self, make_project):
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/core/work.py": (
                "from fx.core.errors import BError\n"
                "def crunch():\n"
                "    'Doc.'\n"
                "    raise BError('x')\n"
            ),
            "fx/serve/app.py": (
                "from fx.core.errors import Base\n"
                "from fx.core.work import crunch\n"
                "ERROR_STATUS = {Base: (500, None)}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        return crunch()\n"
            ),
        })
        findings = check(project)
        assert any("`BError`" in f.message for f in findings)
        assert any("crunch" in f.message for f in findings)

    def test_method_reference_reaches_callback(self, make_project):
        # A bound-method *reference* (no call syntax) handed to other
        # machinery still counts as reachable — conservative resolution.
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/serve/app.py": (
                "from fx.core.errors import AError, Base\n"
                "ERROR_STATUS = {Base: (500, None)}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        return self._later\n"
                "    def _later(self):\n"
                "        'Doc.'\n"
                "        raise AError('x')\n"
            ),
        })
        findings = check(project)
        assert any("`AError`" in f.message for f in findings)

    def test_unreachable_raise_is_not_flagged(self, make_project):
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/core/island.py": (
                "from fx.core.errors import BError\n"
                "def never_called_from_serve():\n"
                "    'Doc.'\n"
                "    raise BError('x')\n"
            ),
            "fx/serve/app.py": (
                "from fx.core.errors import Base\n"
                "ERROR_STATUS = {Base: (500, None)}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        return 1\n"
            ),
        })
        assert check(project) == []


class TestMappingShape:
    def test_missing_mapping_is_flagged(self, make_project):
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/serve/app.py": (
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        return 1\n"
            ),
        })
        findings = check(project)
        assert [f.rule_id for f in findings] == ["serve-status-coverage"]
        assert "no module-level ERROR_STATUS" in findings[0].message

    def test_non_taxonomy_key_is_flagged(self, make_project):
        project = make_project({
            "fx/core/errors.py": ERRORS,
            "fx/serve/app.py": (
                "from fx.core.errors import Base, Unrelated\n"
                "ERROR_STATUS = {Base: (500, None), Unrelated: (400, 'x')}\n"
                "class App:\n"
                "    'Doc.'\n"
                "    def handle(self):\n"
                "        'Doc.'\n"
                "        return 1\n"
            ),
        })
        findings = check(project)
        assert any(
            "`Unrelated` is not a class" in f.message for f in findings
        )

    def test_trees_without_serve_layer_have_nothing_to_prove(
        self, make_project
    ):
        project = make_project({"fx/core/errors.py": ERRORS})
        assert check(project) == []
