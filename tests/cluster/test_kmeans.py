"""Tests for the k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import KMeans, kmeans_1d_centroids


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 5.0]])
        X = np.vstack([c + rng.normal(0, 0.3, (50, 2)) for c in centers])
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        found = km.cluster_centers_[np.argsort(km.cluster_centers_[:, 0])]
        expected = centers[np.argsort(centers[:, 0])]
        np.testing.assert_allclose(found, expected, atol=0.3)

    def test_labels_match_nearest_center(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        km = KMeans(n_clusters=4, random_state=0).fit(X)
        d2 = ((X[:, None, :] - km.cluster_centers_[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(km.labels_, np.argmin(d2, axis=1))

    def test_predict_consistent_with_fit_labels(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(80, 3))
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels_)

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 2))
        inertias = [
            KMeans(n_clusters=k, random_state=0).fit(X).inertia_ for k in (2, 5, 10)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(60, 2))
        a = KMeans(n_clusters=3, random_state=11).fit(X).cluster_centers_
        b = KMeans(n_clusters=3, random_state=11).fit(X).cluster_centers_
        np.testing.assert_array_equal(a, b)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_n_clusters(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((3, 2)))

    def test_duplicate_points(self):
        """All-identical data collapses but must not crash."""
        X = np.ones((20, 2))
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert km.inertia_ == pytest.approx(0.0)


class TestKmeans1d:
    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=300)
        centroids = kmeans_1d_centroids(values, 8, random_state=0)
        assert np.all(np.diff(centroids) > 0)

    def test_shrinks_k_for_few_distinct(self):
        """The paper's rule: k = min(|V_i|, K)."""
        values = np.array([1.0, 1.0, 2.0, 3.0, 3.0])
        centroids = kmeans_1d_centroids(values, 10)
        np.testing.assert_allclose(centroids, [1.0, 2.0, 3.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans_1d_centroids(np.array([]), 3)

    def test_bimodal_density(self):
        """Centroids should concentrate where the data mass is."""
        rng = np.random.default_rng(1)
        values = np.concatenate(
            [rng.normal(0, 0.1, 450), rng.normal(10, 0.1, 50)]
        )
        centroids = kmeans_1d_centroids(values, 10, random_state=0)
        near_zero = np.sum(np.abs(centroids) < 1)
        near_ten = np.sum(np.abs(centroids - 10) < 1)
        assert near_zero > near_ten

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=60), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_centroids_within_data_range(self, values, k):
        values = np.asarray(values)
        centroids = kmeans_1d_centroids(values, k, random_state=0)
        assert centroids.min() >= values.min() - 1e-9
        assert centroids.max() <= values.max() + 1e-9
