"""Tests for the explanation report and the GEF-vs-SHAP comparison."""

import numpy as np
import pytest

from repro.core import GEF, compare_with_shap, explanation_report
from repro.xai import ShapGlobalExplainer


@pytest.fixture(scope="module")
def explanation(small_forest):
    gef = GEF(
        n_univariate=5,
        sampling_strategy="all-thresholds",
        n_samples=6000,
        n_splines=14,
        random_state=0,
    )
    return gef.explain(small_forest)


@pytest.fixture(scope="module")
def shap_global(small_forest, d_prime_small):
    explainer = ShapGlobalExplainer(small_forest)
    return explainer.explain(d_prime_small.X_test[:60])


class TestExplanationReport:
    def test_sections_present(self, explanation, d_prime_small):
        text = explanation_report(explanation, instance=d_prime_small.X_test[0])
        assert "GEF EXPLANATION REPORT" in text
        assert "SURROGATE DIAGNOSTICS" in text
        assert "GLOBAL EXPLANATION" in text
        assert "LOCAL EXPLANATION" in text

    def test_local_section_optional(self, explanation):
        text = explanation_report(explanation)
        assert "LOCAL EXPLANATION" not in text

    def test_top_components_limit(self, explanation):
        full = explanation_report(explanation)
        trimmed = explanation_report(explanation, top_components=2)
        assert len(trimmed) < len(full)

    def test_local_sensitivity_lines(self, explanation, d_prime_small):
        text = explanation_report(explanation, instance=d_prime_small.X_test[1])
        assert "local sensitivity" in text

    def test_tensor_terms_rendered_as_surface_summary(self, interaction_forest):
        expl = GEF(
            n_univariate=5,
            n_interactions=1,
            n_samples=2500,
            n_splines=10,
            random_state=0,
        ).explain(interaction_forest)
        text = explanation_report(expl)
        assert "tensor surface spanning" in text


class TestCompareWithShap:
    def test_correlations_cover_univariate_components(
        self, explanation, shap_global
    ):
        report = compare_with_shap(explanation, shap_global)
        assert set(report.per_feature_correlation) == set(explanation.features)

    def test_trends_agree_on_shared_forest(self, explanation, shap_global):
        """Both explain the same forest: trends must correlate strongly."""
        report = compare_with_shap(explanation, shap_global)
        assert report.mean_correlation() > 0.7

    def test_importance_overlap(self, explanation, shap_global):
        report = compare_with_shap(explanation, shap_global, top_k=3)
        assert report.top_k == 3
        assert 0.0 <= report.importance_rank_overlap <= 1.0
        # Same forest, same signal: the top features largely coincide.
        assert report.importance_rank_overlap >= 2 / 3

    def test_summary_text(self, explanation, shap_global):
        report = compare_with_shap(explanation, shap_global)
        text = report.summary(feature_names=["a", "b", "c", "d", "e"])
        assert "trend corr" in text
        assert "importance overlap" in text

    def test_constant_component_gets_zero(self, explanation, shap_global):
        # Force a degenerate case through the API contract: correlations
        # are finite numbers in [-1, 1] for every component.
        report = compare_with_shap(explanation, shap_global)
        for corr in report.per_feature_correlation.values():
            assert -1.0 - 1e-9 <= corr <= 1.0 + 1e-9
