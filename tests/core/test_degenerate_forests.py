"""GEF on degenerate forests: the pipeline must stay robust."""

import numpy as np
import pytest

from repro.core import GEF
from repro.forest import GradientBoostingRegressor


class TestDegenerateForests:
    def test_single_tree_forest(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (500, 3))
        y = np.where(X[:, 0] > 0.5, 1.0, -1.0)
        forest = GradientBoostingRegressor(
            n_estimators=1, num_leaves=4, learning_rate=1.0, random_state=0
        )
        forest.fit(X, y)
        explanation = GEF(n_samples=1000, random_state=0).explain(forest)
        # A single tree with few splits: GEF still produces a surrogate.
        assert explanation.fidelity["r2"] > 0.8

    def test_stump_forest(self):
        """Every tree a single split on the same feature."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (600, 2))
        y = (X[:, 0] > 0.5).astype(float) * 3
        forest = GradientBoostingRegressor(
            n_estimators=10, num_leaves=2, learning_rate=0.5, random_state=0
        )
        forest.fit(X, y)
        explanation = GEF(n_samples=1000, random_state=0).explain(forest)
        # The step feature dominates the gain ranking; with so few distinct
        # thresholds (< L=10) it is modeled as a factor term.
        assert explanation.features[0] == 0
        from repro.gam import FactorTerm

        assert isinstance(explanation.gam.terms[1], FactorTerm)

    def test_constant_target_forest_rejected_gracefully(self):
        """A forest with no splits has nothing to explain."""
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, (200, 2))
        forest = GradientBoostingRegressor(n_estimators=3, random_state=0)
        forest.fit(X, np.full(200, 5.0))
        with pytest.raises(ValueError, match="no splits"):
            GEF(n_samples=500).explain(forest)

    def test_one_feature_forest(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (800, 1))
        y = np.sin(6 * X[:, 0])
        forest = GradientBoostingRegressor(
            n_estimators=30, num_leaves=8, learning_rate=0.3, random_state=0
        )
        forest.fit(X, y)
        explanation = GEF(
            n_samples=2000, n_splines=10, random_state=0
        ).explain(forest)
        assert explanation.fidelity["r2"] > 0.9

    def test_requesting_more_features_than_used(self, small_forest):
        """n_univariate beyond the used-feature count warns and keeps all."""
        with pytest.warns(UserWarning, match="clamping"):
            explanation = GEF(
                n_univariate=50, n_samples=1000, random_state=0
            ).explain(small_forest)
        assert len(explanation.features) == 5

    def test_requesting_more_interactions_than_pairs(self, small_forest):
        explanation = GEF(
            n_univariate=2,
            n_interactions=10,  # only C(2,2)=1 pair exists
            n_samples=1000,
            random_state=0,
        ).explain(small_forest)
        assert len(explanation.pairs) == 1


class TestNanValidation:
    def test_forest_rejects_nan(self):
        X = np.zeros((10, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            GradientBoostingRegressor(n_estimators=2).fit(X, np.zeros(10))

    def test_gam_rejects_nan(self):
        from repro.gam import GAM, SplineTerm

        X = np.random.default_rng(0).uniform(size=(50, 1))
        y = X[:, 0].copy()
        y[3] = np.inf
        with pytest.raises(ValueError, match="finite"):
            GAM([SplineTerm(0, 6)]).fit(X, y)
