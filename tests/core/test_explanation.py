"""Tests for the explanation objects (global curves, local break-downs)."""

import numpy as np
import pytest

from repro.core import GEF


@pytest.fixture(scope="module")
def explanation(interaction_forest):
    # All-Thresholds sampling (gap-free domains) and 14 splines: enough
    # basis resolution for the ~3 periods of sin(20x) in the generator.
    gef = GEF(
        n_univariate=5,
        n_interactions=1,
        sampling_strategy="all-thresholds",
        n_samples=8000,
        n_splines=14,
        random_state=0,
    )
    return gef.explain(interaction_forest)


class TestGlobalExplanation:
    def test_one_curve_per_component(self, explanation):
        curves = explanation.global_explanation(n_points=40)
        assert len(curves) == 6  # 5 splines + 1 tensor

    def test_sorted_by_importance(self, explanation):
        curves = explanation.global_explanation(n_points=40)
        imps = [c.importance for c in curves]
        assert imps == sorted(imps, reverse=True)

    def test_intervals_bracket_estimate(self, explanation):
        for curve in explanation.global_explanation(n_points=25):
            assert np.all(curve.intervals[:, 0] <= curve.contribution + 1e-12)
            assert np.all(curve.contribution <= curve.intervals[:, 1] + 1e-12)

    def test_tensor_grid_is_2d(self, explanation):
        curves = explanation.global_explanation(n_points=10)
        tensor = next(c for c in curves if len(c.features) == 2)
        assert tensor.grid.shape == (100, 2)
        assert tensor.contribution.shape == (100,)

    def test_univariate_grid_spans_domain(self, explanation):
        curves = explanation.global_explanation(n_points=30)
        uni = next(c for c in curves if len(c.features) == 1)
        domain = explanation.dataset.domains[uni.features[0]]
        assert uni.grid.min() == pytest.approx(domain.min())
        assert uni.grid.max() == pytest.approx(domain.max())

    def test_sine_component_recovered(self, explanation):
        """The s(x1) spline must resemble sin(20 x) from the generator."""
        curves = explanation.global_explanation(n_points=60)
        s1 = next(c for c in curves if c.features == (1,))
        inside = (s1.grid > 0.1) & (s1.grid < 0.9)
        truth = np.sin(20 * s1.grid[inside])
        fitted = s1.contribution[inside]
        corr = np.corrcoef(truth - truth.mean(), fitted - fitted.mean())[0, 1]
        assert corr > 0.9


class TestLocalExplanation:
    def test_contributions_sum_to_eta(self, explanation):
        x = np.full(5, 0.45)
        local = explanation.local_explanation(x)
        total = local.intercept + sum(c.contribution for c in local.contributions)
        assert local.eta == pytest.approx(total)

    def test_prediction_matches_gam(self, explanation):
        x = np.full(5, 0.3)
        local = explanation.local_explanation(x)
        assert local.prediction == pytest.approx(
            float(explanation.predict(x[None, :])[0]), abs=1e-8
        )

    def test_sorted_by_magnitude(self, explanation):
        local = explanation.local_explanation(np.full(5, 0.7))
        mags = [abs(c.contribution) for c in local.contributions]
        assert mags == sorted(mags, reverse=True)

    def test_spline_windows_attached(self, explanation):
        local = explanation.local_explanation(np.full(5, 0.5))
        spline_contribs = [c for c in local.contributions if len(c.features) == 1]
        for c in spline_contribs:
            assert c.window_grid is not None
            assert len(c.window_grid) == len(c.window_contribution)
            # Window is centered on the instance's value.
            mid = c.window_grid[len(c.window_grid) // 2]
            assert mid == pytest.approx(c.value[0], abs=1e-10)

    def test_window_shows_local_variation(self, explanation):
        """The x2 sigmoid jumps at 0.5: the window must show the jump."""
        x = np.full(5, 0.5)
        local = explanation.local_explanation(x, window_fraction=0.2)
        c2 = next(c for c in local.contributions if c.features == (2,))
        window_range = c2.window_contribution.max() - c2.window_contribution.min()
        assert window_range > 0.4

    def test_as_list(self, explanation):
        local = explanation.local_explanation(np.full(5, 0.2))
        pairs = local.as_list()
        assert len(pairs) == 6
        assert all(isinstance(lab, str) for lab, _ in pairs)


class TestLabels:
    def test_feature_label_fallback(self, explanation):
        assert explanation.feature_label(3) == "x3"

    def test_feature_label_named(self, small_forest):
        gef = GEF(n_univariate=2, n_samples=1000, random_state=0)
        names = ["alpha", "beta", "gamma", "delta", "eps"]
        expl = gef.explain(small_forest, feature_names=names)
        assert expl.feature_label(0) == "alpha"
        curves = expl.global_explanation(n_points=10)
        assert any("alpha" in c.label or "beta" in c.label for c in curves)
