"""Tests for explanation persistence."""

import numpy as np
import pytest

from repro.core import GEF, load_explanation, save_explanation


@pytest.fixture(scope="module")
def explanation(interaction_forest):
    gef = GEF(
        n_univariate=5,
        n_interactions=1,
        sampling_strategy="all-thresholds",
        n_samples=4000,
        n_splines=12,
        random_state=0,
    )
    return gef.explain(interaction_forest)


@pytest.fixture(scope="module")
def loaded(explanation, tmp_path_factory):
    path = tmp_path_factory.mktemp("expl") / "explanation.json"
    save_explanation(explanation, path)
    return load_explanation(path)


class TestExplanationPersistence:
    def test_predictions_identical(self, explanation, loaded):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (100, 5))
        np.testing.assert_allclose(
            explanation.predict(X), loaded.predict(X), atol=1e-12
        )

    def test_metadata_preserved(self, explanation, loaded):
        assert loaded.features == explanation.features
        assert loaded.pairs == explanation.pairs
        assert loaded.fidelity == pytest.approx(explanation.fidelity)
        assert loaded.config.sampling_strategy == "all-thresholds"

    def test_global_explanation_works_after_load(self, explanation, loaded):
        a = explanation.global_explanation(n_points=20)
        b = loaded.global_explanation(n_points=20)
        assert [c.label for c in a] == [c.label for c in b]
        for ca, cb in zip(a, b):
            np.testing.assert_allclose(ca.contribution, cb.contribution, atol=1e-10)

    def test_local_explanation_works_after_load(self, loaded):
        local = loaded.local_explanation(np.full(5, 0.5))
        assert len(local.contributions) == 6
        assert np.isfinite(local.prediction)

    def test_dataset_sample_capped(self, loaded):
        assert len(loaded.dataset.X_train) <= 2048
        assert len(loaded.dataset.X_test) <= 1024

    def test_summary_after_load(self, loaded):
        assert "|F'| = 5" in loaded.summary()
