"""Tests for automated component-count selection."""

import numpy as np
import pytest

from repro.core import GEFConfig, suggest_components


@pytest.fixture(scope="module")
def sweep(small_forest):
    config = GEFConfig(
        n_samples=4000, n_splines=12, k_points=60, random_state=0
    )
    return suggest_components(
        small_forest, config, max_interactions=2, tolerance=0.05
    )


class TestSuggestComponents:
    def test_suggestion_within_bounds(self, sweep):
        assert 1 <= sweep.suggested_univariate <= 5
        assert 0 <= sweep.suggested_interactions <= 2

    def test_rmse_decreases_along_explored_path(self, sweep):
        col0 = sweep.rmse[:, 0]
        explored = col0[~np.isnan(col0)]
        # RMSE must improve up to the suggested count.
        assert len(explored) >= sweep.suggested_univariate
        idx = sweep.univariate_counts.index(sweep.suggested_univariate)
        assert explored[idx] <= explored[0]

    def test_all_five_components_needed_on_d_prime(self, sweep):
        """Every g' generator contributes: the sweep keeps most features."""
        assert sweep.suggested_univariate >= 4

    def test_summary_renders(self, sweep):
        text = sweep.summary()
        assert "suggestion" in text
        assert "<-" in text

    def test_tolerance_validation(self, small_forest):
        with pytest.raises(ValueError):
            suggest_components(small_forest, tolerance=1.5)

    def test_single_feature_forest_no_interactions(self):
        """With one usable feature, heredity admits no pairs at all."""
        from repro.forest import GradientBoostingRegressor

        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (500, 2))
        y = np.sin(5 * X[:, 0])  # feature 1 unused
        forest = GradientBoostingRegressor(n_estimators=10, random_state=0)
        forest.fit(X, y)
        config = GEFConfig(n_samples=1000, n_splines=8, random_state=0)
        result = suggest_components(forest, config, max_interactions=2)
        assert result.suggested_univariate == 1
        assert result.suggested_interactions == 0

    def test_zero_tolerance_keeps_growing(self, small_forest):
        config = GEFConfig(n_samples=2000, n_splines=10, random_state=0)
        result = suggest_components(
            small_forest, config, max_interactions=0, tolerance=0.0
        )
        # With tolerance 0 any improvement counts: |F'| grows while RMSE
        # strictly improves, which it does on D'.
        assert result.suggested_univariate >= 3
