"""Tests for the five sampling-domain strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_thresholds_domain,
    build_domain,
    build_sampling_domains,
    equi_size_domain,
    equi_width_domain,
    k_means_domain,
    k_quantile_domain,
)


@pytest.fixture
def skewed_thresholds():
    """Thresholds concentrated around 0.5 like a sigmoid-fitted forest."""
    rng = np.random.default_rng(0)
    return np.sort(np.clip(rng.normal(0.5, 0.08, 400), 0, 1))


class TestAllThresholds:
    def test_midpoints_plus_extremes(self):
        thresholds = np.array([1.0, 2.0, 4.0])
        domain = all_thresholds_domain(thresholds, epsilon_fraction=0.05)
        eps = 0.05 * 3.0
        np.testing.assert_allclose(domain, [1.0 - eps, 1.5, 3.0, 4.0 + eps])

    def test_never_contains_a_threshold(self, skewed_thresholds):
        domain = all_thresholds_domain(skewed_thresholds)
        assert len(np.intersect1d(domain, np.unique(skewed_thresholds))) == 0

    def test_duplicates_collapsed(self):
        domain = all_thresholds_domain(np.array([1.0, 1.0, 2.0]))
        eps = 0.05 * 1.0
        np.testing.assert_allclose(domain, [1.0 - eps, 1.5, 2.0 + eps])

    def test_single_threshold(self):
        domain = all_thresholds_domain(np.array([3.0]))
        assert len(domain) == 2
        assert domain[0] < 3.0 < domain[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_thresholds_domain(np.array([]))


class TestKQuantile:
    def test_size_at_most_k(self, skewed_thresholds):
        domain = k_quantile_domain(skewed_thresholds, 20)
        assert len(domain) <= 20

    def test_follows_density(self, skewed_thresholds):
        """More domain points where thresholds are denser (near 0.5)."""
        domain = k_quantile_domain(skewed_thresholds, 30)
        central = np.sum((domain > 0.4) & (domain < 0.6))
        assert central > len(domain) / 2

    def test_reuses_extreme_values(self, skewed_thresholds):
        domain = k_quantile_domain(skewed_thresholds, 10)
        assert domain[0] == pytest.approx(skewed_thresholds[0])
        assert domain[-1] == pytest.approx(skewed_thresholds[-1])

    def test_k_validation(self, skewed_thresholds):
        with pytest.raises(ValueError):
            k_quantile_domain(skewed_thresholds, 1)


class TestEquiWidth:
    def test_evenly_spaced(self, skewed_thresholds):
        domain = equi_width_domain(skewed_thresholds, 15)
        np.testing.assert_allclose(np.diff(domain), np.diff(domain)[0])

    def test_extends_beyond_range(self, skewed_thresholds):
        domain = equi_width_domain(skewed_thresholds, 10, epsilon_fraction=0.05)
        assert domain[0] < skewed_thresholds[0]
        assert domain[-1] > skewed_thresholds[-1]

    def test_ignores_density(self, skewed_thresholds):
        domain = equi_width_domain(skewed_thresholds, 40)
        central = np.sum((domain > 0.4) & (domain < 0.6))
        # Equi-width places points uniformly regardless of density.
        assert central < len(domain) / 2


class TestKMeans:
    def test_size(self, skewed_thresholds):
        domain = k_means_domain(skewed_thresholds, 12, random_state=0)
        assert len(domain) <= 12
        assert np.all(np.diff(domain) > 0)

    def test_few_distinct_values_shrinks_k(self):
        thresholds = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
        domain = k_means_domain(thresholds, 10)
        np.testing.assert_allclose(domain, [1.0, 2.0, 3.0])

    def test_centroids_inside_range(self, skewed_thresholds):
        domain = k_means_domain(skewed_thresholds, 8, random_state=0)
        assert domain.min() >= skewed_thresholds.min()
        assert domain.max() <= skewed_thresholds.max()


class TestEquiSize:
    def test_chunk_averages(self):
        thresholds = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        domain = equi_size_domain(thresholds, 3)
        np.testing.assert_allclose(domain, [1.5, 3.5, 5.5])

    def test_follows_density(self, skewed_thresholds):
        domain = equi_size_domain(skewed_thresholds, 30)
        central = np.sum((domain > 0.4) & (domain < 0.6))
        assert central > len(domain) / 2

    def test_k_larger_than_values(self):
        thresholds = np.array([1.0, 2.0, 3.0])
        domain = equi_size_domain(thresholds, 50)
        np.testing.assert_allclose(domain, [1.0, 2.0, 3.0])


class TestBuildDomain:
    def test_dispatch(self, skewed_thresholds):
        for strategy in (
            "all-thresholds",
            "k-quantile",
            "equi-width",
            "k-means",
            "equi-size",
        ):
            domain = build_domain(skewed_thresholds, strategy, k=10)
            assert len(domain) >= 2
            assert np.all(np.diff(domain) > 0)

    def test_unknown_strategy(self, skewed_thresholds):
        with pytest.raises(ValueError):
            build_domain(skewed_thresholds, "halton")

    def test_degenerate_single_threshold_straddles_split(self):
        """A one-hot-style feature (single distinct threshold) must get a
        two-point domain straddling the split, whatever the strategy —
        otherwise the forest's right branch is never sampled."""
        thresholds = np.array([0.5, 0.5, 0.5])
        for strategy in ("k-quantile", "k-means", "equi-size"):
            domain = build_domain(thresholds, strategy, k=10)
            assert len(domain) >= 2
            assert domain[0] < 0.5 < domain[-1]

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=50),
        st.sampled_from(["k-quantile", "equi-width", "k-means", "equi-size"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_domains_always_valid(self, values, strategy):
        """Any threshold list yields a finite, sorted, distinct domain."""
        thresholds = np.asarray(values)
        domain = build_domain(thresholds, strategy, k=8)
        assert np.all(np.isfinite(domain))
        assert np.all(np.diff(domain) > 0)
        assert len(domain) >= 1


class TestBuildSamplingDomains:
    def test_covers_used_features(self, small_forest):
        domains = build_sampling_domains(small_forest, "equi-size", k=16)
        used = set()
        for tree in small_forest.trees_:
            used |= tree.used_features()
        assert set(domains) == used

    def test_unfitted_forest(self):
        from repro.forest import GradientBoostingRegressor

        with pytest.raises(ValueError):
            build_sampling_domains(GradientBoostingRegressor(), "equi-size")


class TestCollapsedDomainRescue:
    """A one-hot-style feature (single distinct threshold) must yield a
    usable two-point domain instead of collapsing or raising."""

    def test_single_threshold_widened(self):
        thresholds = np.full(8, 0.5)
        for strategy in ("k-quantile", "equi-size", "k-means"):
            domain = build_domain(thresholds, strategy, k=4)
            assert len(domain) >= 2
            assert np.all(np.diff(domain) > 0)
            assert domain.min() < 0.5 < domain.max()

    def test_zero_epsilon_still_two_points(self):
        domain = build_domain(np.full(8, 0.5), "all-thresholds",
                              epsilon_fraction=0.0)
        assert len(domain) >= 2
        assert np.all(np.diff(domain) > 0)

    def test_kmeans_k1_collapse_rescued(self):
        domain = build_domain(np.array([0.3, 0.5, 0.7]), "k-means", k=1)
        assert len(domain) >= 2

    def test_widen_prefers_neighbour_midpoints(self):
        from repro.core.sampling import _widen_collapsed

        widened = _widen_collapsed(
            np.array([0.5]), np.array([0.3, 0.5, 0.8]), 0.05
        )
        assert np.allclose(widened, [0.4, 0.5, 0.65])

    def test_widen_epsilon_floor_without_neighbours(self):
        from repro.core.sampling import _widen_collapsed

        widened = _widen_collapsed(np.array([0.5]), np.array([0.5]), 0.0)
        assert len(widened) == 2
        assert widened[0] < 0.5 < widened[1]
