"""Tests for univariate selection and threshold extraction."""

import numpy as np
import pytest

from repro.core import feature_thresholds, forest_feature_gains, select_univariate
from repro.forest import GradientBoostingRegressor


class TestFeatureGains:
    def test_gains_shape_and_nonnegative(self, small_forest):
        gains = forest_feature_gains(small_forest)
        assert gains.shape == (5,)
        assert np.all(gains >= 0)

    def test_gains_sum_matches_trees(self, small_forest):
        gains = forest_feature_gains(small_forest)
        manual = np.zeros(5)
        for tree in small_forest.trees_:
            manual += tree.feature_gains(5)
        np.testing.assert_allclose(gains, manual)

    def test_unfitted_forest_rejected(self):
        with pytest.raises(ValueError):
            forest_feature_gains(GradientBoostingRegressor())


class TestSelectUnivariate:
    def test_signal_feature_outranks_noise(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (800, 4))
        y = 5 * X[:, 2] + rng.normal(0, 0.01, 800)
        forest = GradientBoostingRegressor(n_estimators=20, random_state=0)
        forest.fit(X, y)
        assert select_univariate(forest)[0] == 2

    def test_top_k_truncation(self, small_forest):
        top2 = select_univariate(small_forest, n_features=2)
        full = select_univariate(small_forest)
        assert top2 == full[:2]
        assert len(top2) == 2

    def test_ranking_consistent_with_gains(self, small_forest):
        gains = forest_feature_gains(small_forest)
        ranked = select_univariate(small_forest)
        ranked_gains = gains[ranked]
        assert np.all(np.diff(ranked_gains) <= 1e-12)

    def test_invalid_k(self, small_forest):
        with pytest.raises(ValueError):
            select_univariate(small_forest, n_features=0)

    def test_split_importance_fallback(self, small_forest):
        """Gain-less ranking still surfaces the load-bearing features."""
        from repro.core import forest_split_counts

        by_split = select_univariate(small_forest, importance="split")
        counts = forest_split_counts(small_forest)
        assert by_split[0] == int(np.argmax(counts))
        # Gain and split rankings agree on the dominant feature of D'.
        assert by_split[0] == select_univariate(small_forest)[0]

    def test_unknown_importance_rejected(self, small_forest):
        with pytest.raises(ValueError, match="importance"):
            select_univariate(small_forest, importance="cover")

    def test_unused_features_excluded(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (500, 3))
        X[:, 2] = 0.0  # constant, cannot be split
        y = X[:, 0]
        forest = GradientBoostingRegressor(n_estimators=10, random_state=0)
        forest.fit(X, y)
        assert 2 not in select_univariate(forest)


class TestFeatureThresholds:
    def test_sorted_and_complete(self, small_forest):
        per_feature = feature_thresholds(small_forest)
        assert len(per_feature) == 5
        total_nodes = sum(
            len(list(t.internal_nodes())) for t in small_forest.trees_
        )
        assert sum(len(v) for v in per_feature) == total_nodes
        for values in per_feature:
            assert np.all(np.diff(values) >= 0)

    def test_multiplicity_preserved(self):
        """Repeated splits on the same threshold must appear repeatedly."""
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, (500, 1))
        y = (X[:, 0] > 0.5).astype(float) * 10
        forest = GradientBoostingRegressor(
            n_estimators=5, num_leaves=2, learning_rate=0.5, random_state=0
        )
        forest.fit(X, y)
        thresholds = feature_thresholds(forest)[0]
        assert len(thresholds) == 5  # one per tree, same location
        assert len(np.unique(thresholds)) == 1


class TestClampWarning:
    def test_overlong_request_warns_and_clamps(self, small_forest):
        import warnings as _warnings

        gains = forest_feature_gains(small_forest)
        n_used = int(np.count_nonzero(gains > 0))
        with pytest.warns(UserWarning, match="clamping"):
            selected = select_univariate(small_forest, n_used + 10)
        assert len(selected) == n_used

    def test_exact_request_does_not_warn(self, small_forest):
        import warnings as _warnings

        gains = forest_feature_gains(small_forest)
        n_used = int(np.count_nonzero(gains > 0))
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            selected = select_univariate(small_forest, n_used)
        assert len(selected) == n_used
