"""Tests for the data-free robustness audits."""

import numpy as np
import pytest

from repro.core import GEF, minimal_shift, sensitivity_profile


@pytest.fixture(scope="module")
def explanation(small_forest):
    gef = GEF(
        n_univariate=5,
        sampling_strategy="all-thresholds",
        n_samples=6000,
        n_splines=14,
        random_state=0,
    )
    return gef.explain(small_forest)


class TestSensitivityProfile:
    def test_one_entry_per_spline(self, explanation):
        profile = sensitivity_profile(explanation, np.full(5, 0.5))
        assert len(profile) == 5

    def test_sigmoid_feature_most_sensitive_at_inflection(self, explanation):
        """At x = 0.5 the sigmoid generator (x2) jumps: it must lead."""
        profile = sensitivity_profile(
            explanation, np.full(5, 0.5), budget_fraction=0.1
        )
        assert profile[0].feature in (1, 2)  # sine and sigmoid both swing

    def test_swing_grows_with_budget(self, explanation):
        x = np.full(5, 0.5)
        small = sensitivity_profile(explanation, x, budget_fraction=0.05)
        large = sensitivity_profile(explanation, x, budget_fraction=0.3)
        swing = lambda p: {s.feature: s.max_increase - s.max_decrease for s in p}
        small_sw, large_sw = swing(small), swing(large)
        for feature in small_sw:
            assert large_sw[feature] >= small_sw[feature] - 1e-9

    def test_directions_bracket_zero(self, explanation):
        for s in sensitivity_profile(explanation, np.full(5, 0.4)):
            assert s.max_increase >= -1e-9
            assert s.max_decrease <= 1e-9

    def test_budget_validation(self, explanation):
        with pytest.raises(ValueError):
            sensitivity_profile(explanation, np.full(5, 0.5), budget_fraction=0.0)


class TestMinimalShift:
    def test_finds_a_shift(self, explanation):
        result = minimal_shift(explanation, np.full(5, 0.45), delta=0.5)
        assert result is not None
        assert result.achieved_shift >= 0.5
        assert result.perturbation > 0

    def test_sign_respected(self, explanation):
        down = minimal_shift(explanation, np.full(5, 0.45), delta=-0.5)
        assert down is not None
        assert down.achieved_shift <= -0.5

    def test_steep_component_is_the_cheapest_big_shift(self, explanation):
        """Near x = 0.47 both steep generators — sin(20x) with slope up to
        20, and the sigmoid jump at 0.5 — offer a +0.7 shift for a tiny
        perturbation; a flat feature like x0 (unit slope) cannot."""
        x = np.full(5, 0.47)
        result = minimal_shift(explanation, x, delta=0.7)
        assert result is not None
        assert result.feature in (1, 2)
        assert result.perturbation < 0.15

    def test_impossible_shift_returns_none(self, explanation):
        result = minimal_shift(explanation, np.full(5, 0.5), delta=100.0)
        assert result is None

    def test_minimal_shift_rejects_zero_delta(self, explanation):
        with pytest.raises(ValueError):
            minimal_shift(explanation, np.full(5, 0.5), delta=0.0)

    def test_shift_verified_against_forest(self, explanation, small_forest):
        """The surrogate's suggested perturbation moves the real forest."""
        x = np.full(5, 0.47)
        result = minimal_shift(explanation, x, delta=0.7)
        x_new = x.copy()
        x_new[result.feature] = result.new_value
        before = small_forest.predict(x[None, :])[0]
        after = small_forest.predict(x_new[None, :])[0]
        assert after - before > 0.4  # the forest confirms a real jump


class TestMinimalShiftHardening:
    """Regression tests for the bisection refinement: non-monotone splines
    (sin(20x) is one) must never yield a non-achieving or out-of-budget
    refined point."""

    def test_refinement_never_worse_than_coarse_pick(self, explanation):
        x = np.full(5, 0.47)
        coarse = minimal_shift(explanation, x, delta=0.7, refine_iters=0)
        refined = minimal_shift(explanation, x, delta=0.7)
        assert refined is not None
        assert refined.perturbation <= coarse.perturbation + 1e-12
        assert refined.achieved_shift >= 0.7

    def test_refined_point_verified_on_nonmonotone_spline(self, explanation):
        """Every returned point is re-evaluated: the achieved shift must
        hold at the refined location, at several instances and targets."""
        for center in (0.3, 0.45, 0.6):
            for delta in (0.4, 0.7, -0.4):
                result = minimal_shift(explanation, np.full(5, center), delta)
                if result is None:
                    continue
                if delta > 0:
                    assert result.achieved_shift >= delta
                else:
                    assert result.achieved_shift <= delta

    def test_budget_is_respected(self, explanation):
        x = np.full(5, 0.47)
        unconstrained = minimal_shift(explanation, x, delta=0.7)
        budget = unconstrained.perturbation * 1.5
        result = minimal_shift(explanation, x, delta=0.7, budget=budget)
        assert result is not None
        assert result.perturbation <= budget
        assert abs(result.new_value - result.original_value) <= budget

    def test_tight_budget_excludes_far_candidates(self, explanation):
        x = np.full(5, 0.5)
        result = minimal_shift(explanation, x, delta=2.0, budget=1e-6)
        assert result is None or result.perturbation <= 1e-6

    def test_nonpositive_budget_rejected(self, explanation):
        with pytest.raises(ValueError, match="budget"):
            minimal_shift(explanation, np.full(5, 0.5), delta=0.5, budget=0.0)
