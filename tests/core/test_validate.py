"""The forest/domain validators: GEF's input contract, one fault at a time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ForestValidationError,
    ForestValidationReport,
    ReproError,
    SamplingError,
    build_sampling_domains,
    validate_domains,
    validate_forest,
)
from repro.devtools import FOREST_FAULTS, corrupt_forest

_FAULT_MESSAGES = {
    "nan-threshold": "threshold",
    "inf-leaf": "leaf value",
    "dangling-child": "dangling child",
    "cyclic-child": "root is referenced",
    "orphan-node": "orphan",
    "feature-out-of-range": "feature index",
}


def test_clean_forest_passes(small_forest):
    report = validate_forest(small_forest)
    assert isinstance(report, ForestValidationReport)
    assert report.n_trees == len(small_forest.trees_)
    assert report.n_features == int(small_forest.n_features_)
    assert 0 < report.n_leaves < report.n_nodes
    assert "OK" in str(report)


@pytest.mark.parametrize("fault", FOREST_FAULTS)
def test_every_fault_class_is_caught(small_forest, fault):
    bad = corrupt_forest(small_forest, fault)
    with pytest.raises(ForestValidationError) as excinfo:
        validate_forest(bad)
    assert excinfo.value.stage == "validate"
    assert _FAULT_MESSAGES[fault] in str(excinfo.value)
    # tree index of the defect is named
    assert "tree 0" in str(excinfo.value)


@pytest.mark.parametrize("fault", FOREST_FAULTS)
def test_corruption_never_mutates_the_original(small_forest, fault):
    corrupt_forest(small_forest, fault)
    validate_forest(small_forest)  # still clean


def test_unknown_fault_rejected(small_forest):
    with pytest.raises(ValueError, match="unknown fault"):
        corrupt_forest(small_forest, "gamma-ray")


def test_validation_errors_are_valueerrors(small_forest):
    """Taxonomy compatibility: historical `except ValueError` still works."""
    bad = corrupt_forest(small_forest, "nan-threshold")
    with pytest.raises(ValueError):
        validate_forest(bad)
    with pytest.raises(ReproError):
        validate_forest(bad)


def test_unfitted_forest_rejected():
    class Unfitted:
        trees_ = []
        n_features_ = 4

    with pytest.raises(ForestValidationError, match="not fitted"):
        validate_forest(Unfitted())


def test_shared_subtree_rejected(small_forest):
    bad = corrupt_forest(small_forest, "nan-threshold")  # deep copy helper
    tree = bad.trees_[0]
    tree.threshold = np.asarray(small_forest.trees_[0].threshold).copy()
    internal = np.nonzero(np.asarray(tree.feature) != -1)[0]
    # Point a second parent at an already-referenced node: in-degree 2.
    target = int(tree.left[internal[0]])
    tree.right[internal[0]] = target
    with pytest.raises(ForestValidationError, match="referenced as a child"):
        validate_forest(bad)


def test_valid_domains_pass(small_forest):
    domains = build_sampling_domains(small_forest, "equi-size", k=32)
    validate_domains(domains, int(small_forest.n_features_))


@pytest.mark.parametrize(
    "domains, message",
    [
        ({}, "no sampling domains"),
        ({99: np.array([0.0, 1.0])}, "outside"),
        ({0: np.array([])}, "non-empty"),
        ({0: np.array([0.0, np.nan])}, "non-finite"),
        ({0: np.array([1.0, 0.5])}, "strictly"),
    ],
)
def test_bad_domains_rejected(domains, message):
    with pytest.raises(SamplingError, match=message) as excinfo:
        validate_domains(domains, 5)
    assert excinfo.value.stage == "domains"
