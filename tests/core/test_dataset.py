"""Tests for synthetic dataset (D*) generation."""

import numpy as np
import pytest

from repro.core import build_sampling_domains, generate_dataset, sample_instances


@pytest.fixture
def domains(small_forest):
    return build_sampling_domains(small_forest, "equi-size", k=12)


class TestSampleInstances:
    def test_values_come_from_domains(self, domains):
        rng = np.random.default_rng(0)
        X = sample_instances(domains, 500, 5, rng)
        for feature, domain in domains.items():
            assert np.all(np.isin(X[:, feature], domain))

    def test_missing_domain_features_zero(self):
        rng = np.random.default_rng(0)
        X = sample_instances({0: np.array([1.0, 2.0])}, 100, 3, rng)
        assert np.all(X[:, 1] == 0.0)
        assert np.all(X[:, 2] == 0.0)

    def test_out_of_range_feature_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_instances({7: np.array([1.0])}, 10, 3, rng)

    def test_sampling_is_uniform_over_domain(self, domains):
        rng = np.random.default_rng(1)
        X = sample_instances(domains, 20_000, 5, rng)
        domain = domains[0]
        counts = np.array([(X[:, 0] == v).sum() for v in domain])
        expected = 20_000 / len(domain)
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))

    def test_n_samples_validation(self, domains):
        with pytest.raises(ValueError):
            sample_instances(domains, 0, 5, np.random.default_rng(0))


class TestGenerateDataset:
    def test_labels_are_forest_predictions(self, small_forest, domains):
        ds = generate_dataset(small_forest, domains, 400, random_state=0)
        np.testing.assert_allclose(
            ds.y_train, small_forest.predict_raw(ds.X_train)
        )
        np.testing.assert_allclose(ds.y_test, small_forest.predict_raw(ds.X_test))

    def test_split_sizes(self, small_forest, domains):
        ds = generate_dataset(
            small_forest, domains, 1000, test_fraction=0.25, random_state=0
        )
        assert len(ds.X_test) == 250
        assert len(ds.X_train) == 750
        assert ds.n_samples == 1000

    def test_deterministic(self, small_forest, domains):
        a = generate_dataset(small_forest, domains, 200, random_state=5)
        b = generate_dataset(small_forest, domains, 200, random_state=5)
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_classifier_probability_labels(self, small_classifier):
        domains = build_sampling_domains(small_classifier, "k-quantile", k=10)
        ds = generate_dataset(
            small_classifier, domains, 300, label="probability", random_state=0
        )
        assert np.all((ds.y_train >= 0) & (ds.y_train <= 1))

    def test_classifier_raw_labels(self, small_classifier):
        domains = build_sampling_domains(small_classifier, "k-quantile", k=10)
        ds = generate_dataset(
            small_classifier, domains, 300, label="raw", random_state=0
        )
        # Raw scores are log-odds: values outside [0, 1] are expected.
        assert ds.y_train.min() < 0 or ds.y_train.max() > 1

    def test_probability_labels_need_classifier(self, small_forest, domains):
        with pytest.raises(ValueError, match="classifier"):
            generate_dataset(small_forest, domains, 100, label="probability")

    def test_test_fraction_validation(self, small_forest, domains):
        with pytest.raises(ValueError):
            generate_dataset(small_forest, domains, 100, test_fraction=0.0)
