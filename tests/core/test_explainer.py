"""End-to-end tests of the GEF pipeline."""

import numpy as np
import pytest

from repro.core import GEF, GEFConfig
from repro.metrics import r2_score


@pytest.fixture(scope="module")
def explanation(small_forest):
    # Note the modest basis size: Equi-Size concentrates domain points in
    # high-threshold-density regions, so an oversized basis would leave
    # unsupported splines in the sparse tails (the K-sensitivity the paper
    # reports for this strategy in Figures 5 and 8).
    gef = GEF(
        n_univariate=5,
        n_interactions=0,
        sampling_strategy="equi-size",
        k_points=60,
        n_samples=6000,
        n_splines=10,
        random_state=0,
    )
    return gef.explain(small_forest)


class TestPipeline:
    def test_high_fidelity_to_forest(self, explanation):
        assert explanation.fidelity["r2"] > 0.9

    def test_fidelity_on_original_data(self, explanation, small_forest, d_prime_small):
        """The surrogate tracks the forest on the *original* distribution."""
        X = d_prime_small.X_test
        r2 = r2_score(small_forest.predict(X), explanation.predict(X))
        assert r2 > 0.9

    def test_selected_features(self, explanation):
        assert sorted(explanation.features) == [0, 1, 2, 3, 4]

    def test_no_interactions_requested(self, explanation):
        assert explanation.pairs == []

    def test_summary_text(self, explanation):
        text = explanation.summary()
        assert "|F'| = 5" in text
        assert "equi-size" in text

    def test_config_or_kwargs_exclusive(self):
        with pytest.raises(TypeError):
            GEF(GEFConfig(), n_univariate=3)

    def test_feature_names_length_checked(self, small_forest):
        gef = GEF(n_samples=100)
        with pytest.raises(ValueError):
            gef.explain(small_forest, feature_names=["a", "b"])


class TestWithInteractions:
    def test_tensor_terms_improve_fit(self, interaction_forest):
        base_cfg = dict(
            n_univariate=5,
            sampling_strategy="equi-size",
            k_points=50,
            n_samples=6000,
            n_splines=12,
            random_state=0,
        )
        without = GEF(n_interactions=0, **base_cfg).explain(interaction_forest)
        with_pairs = GEF(
            n_interactions=3, interaction_strategy="gain-path", **base_cfg
        ).explain(interaction_forest)
        assert with_pairs.fidelity["rmse"] < without.fidelity["rmse"]

    def test_pairs_recorded(self, interaction_forest):
        expl = GEF(
            n_univariate=5,
            n_interactions=2,
            n_samples=2000,
            random_state=0,
        ).explain(interaction_forest)
        assert len(expl.pairs) == 2
        for i, j in expl.pairs:
            assert i in expl.features and j in expl.features


class TestClassifierExplanation:
    def test_probability_surrogate(self, small_classifier):
        gef = GEF(
            n_univariate=2,
            n_samples=4000,
            sampling_strategy="k-quantile",
            k_points=40,
            n_splines=10,
            random_state=0,
        )
        expl = gef.explain(small_classifier)
        assert expl.gam.link.name == "logit"
        preds = expl.predict(expl.dataset.X_test)
        assert np.all((preds >= 0) & (preds <= 1))
        # Fidelity to the forest's probabilities.
        assert expl.fidelity["rmse"] < 0.15

    def test_raw_label_mode(self, small_classifier):
        gef = GEF(
            n_univariate=2,
            n_samples=2000,
            label="raw",
            n_splines=10,
            random_state=0,
        )
        expl = gef.explain(small_classifier)
        assert expl.gam.link.name == "identity"


class TestLinearComponentMode:
    def test_glm_surrogate_underfits_the_sine(self, small_forest):
        """component_type='linear' builds the §3.1 GLM: interpretable but
        unable to bend, so its fidelity is far below the spline GAM's."""
        base = dict(
            n_univariate=5,
            sampling_strategy="equi-size",
            k_points=100,
            n_samples=5000,
            random_state=0,
        )
        glm = GEF(component_type="linear", **base).explain(small_forest)
        gam = GEF(component_type="spline", n_splines=14, **base).explain(
            small_forest
        )
        assert gam.fidelity["r2"] > glm.fidelity["r2"] + 0.2

    def test_glm_local_explanation_works(self, small_forest):
        expl = GEF(
            component_type="linear",
            n_univariate=3,
            n_samples=2000,
            random_state=0,
        ).explain(small_forest)
        local = expl.local_explanation(np.full(5, 0.5))
        assert len(local.contributions) == 3
        # Linear components carry no what-if window (nothing to zoom).
        assert all(c.window_grid is None for c in local.contributions)


class TestDataFreeProperty:
    def test_explanation_uses_only_forest(self, small_forest, d_prime_small):
        """Serializing the forest and explaining the clone must agree:
        nothing outside the forest structure can influence GEF."""
        from repro.forest import forest_from_dict, forest_to_dict

        clone = forest_from_dict(forest_to_dict(small_forest))
        cfg = dict(
            n_univariate=3, n_samples=2000, k_points=30, random_state=0
        )
        original = GEF(**cfg).explain(small_forest)
        from_clone = GEF(**cfg).explain(clone)
        X = d_prime_small.X_test[:100]
        np.testing.assert_allclose(
            original.predict(X), from_clone.predict(X), atol=1e-10
        )
