"""Tests for the four interaction-detection heuristics."""

import numpy as np
import pytest

from repro.core import (
    candidate_pairs,
    count_path_scores,
    gain_path_scores,
    pair_gain_scores,
    rank_interactions,
    select_interactions,
)
from repro.forest import LEAF, Tree


def chain_tree():
    """Root on f0, left child on f1, that child's left on f2; gains 5/3/1."""
    return Tree(
        feature=np.array([0, 1, LEAF, 2, LEAF, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.5, 0.5, 0.0, 0.5, 0.0, 0.0, 0.0]),
        left=np.array([1, 3, -1, 5, -1, -1, -1], dtype=np.int32),
        right=np.array([2, 4, -1, 6, -1, -1, -1], dtype=np.int32),
        value=np.zeros(7),
        gain=np.array([5.0, 3.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
        n_samples=np.array([8, 6, 2, 4, 2, 2, 2], dtype=np.int64),
    )


class FakeForest:
    """Minimal forest protocol wrapper for handcrafted trees."""

    def __init__(self, trees, n_features):
        self.trees_ = trees
        self.n_features_ = n_features
        self.init_score_ = 0.0

    def predict_raw(self, X):
        X = np.atleast_2d(X)
        out = np.zeros(len(X))
        for tree in self.trees_:
            out += tree.predict(X)
        return out


class TestCandidatePairs:
    def test_all_unordered_pairs(self):
        assert candidate_pairs([0, 1, 2]) == [(0, 1), (0, 2), (1, 2)]

    def test_heredity_restriction(self):
        # Only features in F' can appear in a pair.
        pairs = candidate_pairs([3, 1])
        assert pairs == [(1, 3)]

    def test_degenerate(self):
        assert candidate_pairs([2]) == []
        assert candidate_pairs([]) == []

    def test_duplicates_ignored(self):
        assert candidate_pairs([1, 1, 2]) == [(1, 2)]


class TestCountPath:
    def test_chain_tree_counts(self):
        """f0 is ancestor of f1 and f2; f1 is ancestor of f2."""
        forest = FakeForest([chain_tree()], 3)
        scores = count_path_scores(forest, [0, 1, 2])
        assert scores[(0, 1)] == 1.0
        assert scores[(0, 2)] == 1.0
        assert scores[(1, 2)] == 1.0

    def test_repeated_descendant_counted_twice(self):
        """A feature appearing twice below the root counts twice."""
        tree = Tree(
            feature=np.array([0, 1, 1, LEAF, LEAF, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.5, 0.3, 0.7, 0.0, 0.0, 0.0, 0.0]),
            left=np.array([1, 3, 5, -1, -1, -1, -1], dtype=np.int32),
            right=np.array([2, 4, 6, -1, -1, -1, -1], dtype=np.int32),
            value=np.zeros(7),
            gain=np.array([4.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
            n_samples=np.array([8, 4, 4, 2, 2, 2, 2], dtype=np.int64),
        )
        forest = FakeForest([tree], 2)
        scores = count_path_scores(forest, [0, 1])
        assert scores[(0, 1)] == 2.0

    def test_same_feature_pairs_skipped(self):
        """(f, f) is not an interaction even when f repeats on a path."""
        tree = Tree(
            feature=np.array([0, 0, LEAF, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.5, 0.25, 0.0, 0.0, 0.0]),
            left=np.array([1, 3, -1, -1, -1], dtype=np.int32),
            right=np.array([2, 4, -1, -1, -1], dtype=np.int32),
            value=np.zeros(5),
            gain=np.array([4.0, 2.0, 0.0, 0.0, 0.0]),
            n_samples=np.array([8, 4, 4, 2, 2], dtype=np.int64),
        )
        forest = FakeForest([tree], 2)
        scores = count_path_scores(forest, [0, 1])
        assert scores[(0, 1)] == 0.0

    def test_sums_over_trees(self):
        forest = FakeForest([chain_tree(), chain_tree()], 3)
        scores = count_path_scores(forest, [0, 1, 2])
        assert scores[(0, 1)] == 2.0


class TestGainPath:
    def test_min_gain_accumulated(self):
        """Each ancestor/descendant pair contributes min of the two gains."""
        forest = FakeForest([chain_tree()], 3)
        scores = gain_path_scores(forest, [0, 1, 2])
        assert scores[(0, 1)] == pytest.approx(3.0)  # min(5, 3)
        assert scores[(0, 2)] == pytest.approx(1.0)  # min(5, 1)
        assert scores[(1, 2)] == pytest.approx(1.0)  # min(3, 1)

    def test_gain_path_weighted_version_of_count(self):
        """With unit gains, Gain-Path reduces exactly to Count-Path."""
        tree = chain_tree()
        tree.gain = np.where(tree.feature != LEAF, 1.0, 0.0)
        forest = FakeForest([tree], 3)
        counts = count_path_scores(forest, [0, 1, 2])
        gains = gain_path_scores(forest, [0, 1, 2])
        assert counts == gains


class TestPairGain:
    def test_additive_in_feature_importances(self):
        forest = FakeForest([chain_tree()], 3)
        scores = pair_gain_scores(forest, [0, 1, 2])
        # I(f0)=5, I(f1)=3, I(f2)=1.
        assert scores[(0, 1)] == pytest.approx(8.0)
        assert scores[(0, 2)] == pytest.approx(6.0)
        assert scores[(1, 2)] == pytest.approx(4.0)


class TestRankAndSelect:
    def test_ranking_on_real_forest(self, interaction_forest):
        """The injected pairs of D'' should rank well under gain-path."""
        true_pairs = {(0, 1), (0, 4), (1, 4)}
        ranked = rank_interactions(
            interaction_forest, [0, 1, 2, 3, 4], "gain-path"
        )
        top4 = {pair for pair, _ in ranked[:4]}
        assert len(top4 & true_pairs) >= 2

    def test_scores_sorted_descending(self, interaction_forest):
        ranked = rank_interactions(interaction_forest, [0, 1, 2, 3, 4], "count-path")
        values = [score for _, score in ranked]
        assert values == sorted(values, reverse=True)

    def test_select_interactions_count(self, interaction_forest):
        pairs = select_interactions(interaction_forest, [0, 1, 2, 3, 4], 3)
        assert len(pairs) == 3

    def test_select_zero_interactions(self, interaction_forest):
        assert select_interactions(interaction_forest, [0, 1], 0) == []

    def test_hstat_requires_sample(self, interaction_forest):
        with pytest.raises(ValueError, match="sample"):
            rank_interactions(interaction_forest, [0, 1], "h-stat")

    def test_unknown_strategy(self, interaction_forest):
        with pytest.raises(ValueError):
            rank_interactions(interaction_forest, [0, 1], "anova")

    def test_negative_selection_rejected(self, interaction_forest):
        with pytest.raises(ValueError):
            select_interactions(interaction_forest, [0, 1], -1)

    def test_hstat_on_real_forest(self, interaction_forest, d_double_prime_small):
        sample = d_double_prime_small.X_train[:40]
        ranked = rank_interactions(
            interaction_forest, [0, 1, 2, 3, 4], "h-stat", sample=sample
        )
        assert len(ranked) == 10
        top4 = {pair for pair, _ in ranked[:4]}
        assert len(top4 & {(0, 1), (0, 4), (1, 4)}) >= 2
