"""Tests for GEFConfig validation."""

import pytest

from repro.core import GEFConfig


class TestGEFConfig:
    def test_defaults_valid(self):
        cfg = GEFConfig()
        assert cfg.sampling_strategy == "equi-size"
        assert cfg.interaction_strategy == "gain-path"
        assert cfg.categorical_threshold == 10  # the paper's L

    def test_unknown_sampling_strategy(self):
        with pytest.raises(ValueError, match="sampling strategy"):
            GEFConfig(sampling_strategy="stratified")

    def test_unknown_interaction_strategy(self):
        with pytest.raises(ValueError, match="interaction strategy"):
            GEFConfig(interaction_strategy="anova")

    def test_n_univariate_bounds(self):
        with pytest.raises(ValueError):
            GEFConfig(n_univariate=0)
        assert GEFConfig(n_univariate=None).n_univariate is None

    def test_n_interactions_bounds(self):
        with pytest.raises(ValueError):
            GEFConfig(n_interactions=-1)

    def test_k_points_bounds(self):
        with pytest.raises(ValueError):
            GEFConfig(k_points=1)

    def test_n_samples_bounds(self):
        with pytest.raises(ValueError):
            GEFConfig(n_samples=5)

    def test_test_fraction_bounds(self):
        with pytest.raises(ValueError):
            GEFConfig(test_fraction=0.0)
        with pytest.raises(ValueError):
            GEFConfig(test_fraction=1.0)

    def test_epsilon_bounds(self):
        with pytest.raises(ValueError):
            GEFConfig(epsilon_fraction=-0.1)

    def test_label_values(self):
        with pytest.raises(ValueError):
            GEFConfig(label="logit")
        for ok in ("auto", "raw", "probability"):
            assert GEFConfig(label=ok).label == ok
