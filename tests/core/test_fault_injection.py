"""Chaos suite: every injected fault ends in a typed error or a degraded
explanation whose StageReport names the fallback — never a raw traceback.

Runs under ``REPRO_NUMERICS=strict`` like the whole suite (conftest arms
the sanitizer), so injected numerics faults and real ones take the same
path through the stage runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GEF,
    FitDivergenceError,
    ForestValidationError,
    GEFConfig,
    ReproError,
    SamplingError,
    StageReport,
    StageTimeoutError,
    explanation_from_dict,
    explanation_to_dict,
    get_stage_hook,
)
from repro.core.errors import StageFailureError
from repro.core.stages import STAGE_NAMES
from repro.devtools import (
    FOREST_FAULTS,
    corrupt_forest,
    fail_stage,
    force_kernel_fault,
    stall_stage,
)
from repro.forest import GradientBoostingRegressor


@pytest.fixture(scope="module")
def forest():
    rng = np.random.default_rng(3)
    X = rng.uniform(-1.0, 1.0, size=(500, 5))
    y = 2.0 * X[:, 0] + np.sin(3.0 * X[:, 1]) + X[:, 2] * X[:, 3]
    model = GradientBoostingRegressor(
        n_estimators=25, num_leaves=8, random_state=0
    )
    model.fit(X, y)
    return model


def _gef(**overrides) -> GEF:
    base = dict(
        n_univariate=3, n_interactions=1, n_samples=1_500, random_state=0
    )
    base.update(overrides)
    return GEF(GEFConfig(**base))


# ----------------------------------------------------------------------
# corrupted forests
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fault", FOREST_FAULTS)
def test_corrupted_forest_fails_typed(forest, fault):
    with pytest.raises(ForestValidationError) as excinfo:
        _gef().explain(corrupt_forest(forest, fault))
    assert excinfo.value.stage == "validate"


def test_validation_can_be_skipped(forest):
    """validate_inputs=False trades safety for speed — by explicit choice."""
    explanation = _gef(validate_inputs=False).explain(forest)
    assert "validate" not in explanation.stage_report


# ----------------------------------------------------------------------
# kernel numerics faults and the fit ladder
# ----------------------------------------------------------------------
def test_transient_kernel_fault_recovers(forest):
    with force_kernel_fault("GCV", count=1):
        explanation = _gef().explain(forest)
    record = explanation.stage_report["fit"]
    assert record.status == "recovered"
    assert record.fallback is None
    assert explanation.pairs  # nothing was dropped
    assert any(a.outcome == "retry" for a in record.attempts)


@pytest.mark.parametrize(
    "count, rung",
    [(3, "drop-tensor"), (6, "univariate-only"), (9, "linear")],
)
def test_ladder_descends_rung_by_rung(forest, count, rung):
    with force_kernel_fault("GCV", count=count):
        explanation = _gef().explain(forest)
    record = explanation.stage_report["fit"]
    assert record.status == "degraded"
    assert record.fallback == rung
    assert explanation.pairs == []
    assert explanation.stage_report.degraded
    assert rung in explanation.stage_report.fallbacks
    assert rung in explanation.summary()
    assert np.isfinite(explanation.fidelity["r2"])


def test_persistent_kernel_fault_exhausts_ladder(forest):
    with pytest.raises(FitDivergenceError) as excinfo:
        with force_kernel_fault("GCV", repeat=True):
            _gef().explain(forest)
    assert excinfo.value.stage == "fit"
    assert "ladder" in str(excinfo.value)


def test_strict_mode_fails_fast(forest):
    with pytest.raises(FitDivergenceError) as excinfo:
        with force_kernel_fault("GCV", count=1):
            _gef(strict=True).explain(forest)
    assert "strict" in str(excinfo.value)


def test_clean_run_never_degrades(forest):
    """Acceptance criterion: the ladder is a no-op when nothing fails."""
    explanation = _gef().explain(forest)
    report = explanation.stage_report
    assert not report.degraded
    assert report.fallbacks == []
    for record in report.records:
        assert record.status == "ok"
        assert len(record.attempts) == 1


# ----------------------------------------------------------------------
# stage kills, stalls and retries
# ----------------------------------------------------------------------
def test_untyped_crash_is_wrapped(forest):
    with pytest.raises(StageFailureError) as excinfo:
        with fail_stage("select"):
            _gef().explain(forest)
    assert excinfo.value.stage == "select"
    assert "RuntimeError" in str(excinfo.value)


def test_stall_beyond_budget_times_out(forest):
    gef = _gef(stage_timeout={"sample": 5.0})
    with pytest.raises(StageTimeoutError) as excinfo:
        with stall_stage("sample", 60.0):
            gef.explain(forest)
    assert excinfo.value.stage == "sample"
    assert "budget" in str(excinfo.value)


def test_stall_within_budget_passes(forest):
    gef = _gef(stage_timeout={"sample": 120.0})
    with stall_stage("sample", 1.0):
        explanation = gef.explain(forest)
    assert explanation.stage_report["sample"].status == "ok"
    assert explanation.stage_report["sample"].elapsed >= 1.0


def test_scalar_timeout_applies_to_every_stage(forest):
    gef = _gef(stage_timeout=5.0)
    with pytest.raises(StageTimeoutError) as excinfo:
        with stall_stage("domains", 60.0):
            gef.explain(forest)
    assert excinfo.value.stage == "domains"


def test_transient_sampling_fault_reseeds(forest):
    with fail_stage("sample", exc=SamplingError("injected degenerate D*")):
        explanation = _gef().explain(forest)
    record = explanation.stage_report["sample"]
    assert record.status == "recovered"
    assert [a.outcome for a in record.attempts] == ["retry", "ok"]


def test_persistent_sampling_fault_is_typed(forest):
    with pytest.raises(SamplingError) as excinfo:
        with fail_stage(
            "sample", exc=SamplingError("injected degenerate D*"), repeat=True
        ):
            _gef().explain(forest)
    assert excinfo.value.stage == "sample"


def test_strict_mode_disables_retries(forest):
    with pytest.raises(SamplingError):
        with fail_stage("sample", exc=SamplingError("injected")):
            _gef(strict=True).explain(forest)


def test_interactions_failure_degrades_to_univariate(forest):
    with fail_stage("interactions", repeat=True):
        explanation = _gef().explain(forest)
    record = explanation.stage_report["interactions"]
    assert record.status == "degraded"
    assert record.fallback == "no-interactions"
    assert explanation.pairs == []
    assert np.isfinite(explanation.fidelity["r2"])


def test_interactions_failure_strict_raises(forest):
    with pytest.raises(StageFailureError) as excinfo:
        with fail_stage("interactions", repeat=True):
            _gef(strict=True).explain(forest)
    assert excinfo.value.stage == "interactions"


@pytest.mark.parametrize("stage", STAGE_NAMES)
def test_every_stage_kill_ends_typed(forest, stage):
    """Zero unhandled tracebacks: whatever stage dies, the failure is a
    ReproError or a successful degraded explanation."""
    try:
        with fail_stage(stage, repeat=True):
            explanation = _gef().explain(forest)
    except ReproError as exc:
        assert exc.stage == stage
    else:
        assert explanation.stage_report.degraded


def test_hooks_are_restored_after_injection(forest):
    with fail_stage("select"):
        assert get_stage_hook("select") is not None
    assert get_stage_hook("select") is None


# ----------------------------------------------------------------------
# the stage report artifact
# ----------------------------------------------------------------------
def test_stage_report_roundtrip(forest):
    with force_kernel_fault("GCV", count=3):
        explanation = _gef().explain(forest)
    data = explanation_to_dict(explanation)
    restored = explanation_from_dict(data)
    assert isinstance(restored.stage_report, StageReport)
    assert restored.stage_report.to_dict() == explanation.stage_report.to_dict()
    assert restored.stage_report["fit"].fallback == "drop-tensor"
    assert restored.stage_report.degraded


def test_stage_report_summary_names_everything(forest):
    explanation = _gef().explain(forest)
    summary = explanation.stage_report.summary()
    for stage in STAGE_NAMES:
        assert stage in summary


def test_degenerate_dataset_detection(forest):
    """A forest labelling every instance identically is a SamplingError."""
    from repro.core.explainer import _check_dataset

    class Flat:
        X_train = np.ones((8, 5))
        y_train = np.zeros(8)
        y_test = np.zeros(4)

    with pytest.raises(SamplingError, match="identically"):
        _check_dataset(Flat(), [0])

    class FlatFeature:
        X_train = np.concatenate(
            [np.ones((8, 1)), np.arange(8.0)[:, None]], axis=1
        )
        y_train = np.arange(8.0)
        y_test = np.arange(4.0)

    with pytest.raises(SamplingError, match="constant"):
        _check_dataset(FlatFeature(), [0])
    _check_dataset(FlatFeature(), [1])  # non-constant column passes
