"""Tests for GAM term construction and the categorical heuristic."""

import numpy as np
import pytest

from repro.core import GEFConfig, build_gam, build_terms, is_categorical
from repro.gam import FactorTerm, SplineTerm, TensorTerm


@pytest.fixture
def thresholds():
    """Feature 0: continuous (many thresholds); feature 1: categorical."""
    return [
        np.linspace(0, 1, 50),
        np.array([0.5, 0.5, 1.5]),  # two distinct values < L
        np.linspace(-1, 1, 200),
    ]


class TestCategoricalHeuristic:
    def test_few_distinct_thresholds_is_categorical(self):
        assert is_categorical(np.array([1.0, 2.0, 1.0]), categorical_threshold=10)

    def test_many_thresholds_is_continuous(self):
        assert not is_categorical(np.linspace(0, 1, 50), categorical_threshold=10)

    def test_boundary_inclusive(self):
        # Exactly L distinct values is continuous ("fewer than L" rule).
        values = np.arange(10.0)
        assert not is_categorical(values, categorical_threshold=10)
        assert is_categorical(values[:9], categorical_threshold=10)


class TestBuildTerms:
    def test_term_types(self, thresholds):
        cfg = GEFConfig()
        terms = build_terms([0, 1], [(0, 2)], thresholds, cfg)
        assert isinstance(terms[0], SplineTerm)
        assert isinstance(terms[1], FactorTerm)
        assert isinstance(terms[2], TensorTerm)

    def test_term_order_univariate_then_pairs(self, thresholds):
        cfg = GEFConfig()
        terms = build_terms([2, 0], [(0, 2)], thresholds, cfg)
        assert [t.features for t in terms] == [(2,), (0,), (0, 2)]

    def test_feature_names_used_in_labels(self, thresholds):
        cfg = GEFConfig()
        terms = build_terms(
            [0, 1], [], thresholds, cfg, feature_names=["age", "sex", "bmi"]
        )
        assert terms[0].label == "s(age)"
        assert terms[1].label == "f(sex)"

    def test_spline_basis_size_from_config(self, thresholds):
        cfg = GEFConfig(n_splines=15)
        terms = build_terms([0], [], thresholds, cfg)
        assert terms[0].n_splines == 15

    def test_linear_component_type(self, thresholds):
        from repro.gam import LinearTerm

        cfg = GEFConfig(component_type="linear")
        terms = build_terms([0, 1], [], thresholds, cfg)
        assert isinstance(terms[0], LinearTerm)
        # Categorical features stay factors even in linear mode.
        assert isinstance(terms[1], FactorTerm)

    def test_invalid_component_type(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            GEFConfig(component_type="quadratic")


class TestBuildGam:
    def test_regression_gets_identity_link(self, thresholds):
        gam = build_gam([0], [], thresholds, GEFConfig(), is_classifier=False)
        assert gam.link.name == "identity"

    def test_classifier_gets_logit_link(self, thresholds):
        gam = build_gam([0], [], thresholds, GEFConfig(), is_classifier=True)
        assert gam.link.name == "logit"

    def test_classifier_raw_labels_get_identity(self, thresholds):
        cfg = GEFConfig(label="raw")
        gam = build_gam([0], [], thresholds, cfg, is_classifier=True)
        assert gam.link.name == "identity"

    def test_empty_features_rejected(self, thresholds):
        with pytest.raises(ValueError):
            build_gam([], [], thresholds, GEFConfig(), is_classifier=False)
