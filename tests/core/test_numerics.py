"""The runtime numerics sanitizer: mode knob, guard, check helpers, and
their wiring into the hot kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import get_numerics_mode, set_numerics_mode
from repro.core.numerics import (
    NumericsError,
    assert_all_finite,
    assert_psd_diagonal,
    assert_strictly_increasing,
    numerics_guard,
    strict_enabled,
)


@pytest.fixture(autouse=True)
def restore_strict_mode():
    """The suite runs strict (conftest); leave it that way after each test."""
    yield
    set_numerics_mode("strict")


class TestModeKnob:
    def test_suite_runs_strict(self):
        assert get_numerics_mode() == "strict"
        assert strict_enabled()

    def test_mode_round_trip(self):
        set_numerics_mode("off")
        assert get_numerics_mode() == "off"
        assert not strict_enabled()
        set_numerics_mode("strict")
        assert strict_enabled()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown numerics mode"):
            set_numerics_mode("paranoid")
        assert get_numerics_mode() == "strict"  # knob untouched on error

    def test_config_reexports_the_knob(self):
        from repro.core import config

        assert "set_numerics_mode" in config.__all__
        assert "get_numerics_mode" in config.__all__


class TestNumericsGuard:
    def test_invalid_operation_raises_tagged(self):
        with pytest.raises(NumericsError, match="my kernel"):
            with numerics_guard("my kernel"):
                np.sqrt(np.array([-1.0]))

    def test_zero_divide_raises(self):
        with pytest.raises(NumericsError):
            with numerics_guard("kernel"):
                np.array([1.0]) / np.array([0.0])

    def test_overflow_policy_configurable(self):
        with numerics_guard("kernel", over="ignore"):
            np.exp(np.array([1e4]))  # saturates to inf, allowed
        with pytest.raises(NumericsError):
            with numerics_guard("kernel", over="raise"):
                np.exp(np.array([1e4]))

    def test_underflow_always_silent(self):
        with numerics_guard("kernel"):
            np.exp(np.array([-1e4]))

    def test_error_is_a_floating_point_error(self):
        assert issubclass(NumericsError, FloatingPointError)

    def test_noop_when_off(self):
        set_numerics_mode("off")
        with numerics_guard("kernel"), np.errstate(invalid="ignore"):
            assert np.isnan(np.sqrt(np.array([-1.0]))[0])


class TestCheckHelpers:
    def test_all_finite_passes_and_fails(self):
        assert_all_finite(np.ones(3), "x")  # no raise
        with pytest.raises(NumericsError, match="2 non-finite"):
            assert_all_finite(np.array([1.0, np.nan, np.inf]), "x")

    def test_all_finite_ignores_integer_arrays(self):
        assert_all_finite(np.arange(5), "ints")

    def test_strictly_increasing(self):
        assert_strictly_increasing(np.array([1.0, 2.0, 5.0]), "dom")
        with pytest.raises(NumericsError, match="not strictly increasing"):
            assert_strictly_increasing(np.array([1.0, 1.0, 2.0]), "dom")
        with pytest.raises(NumericsError, match="not strictly increasing"):
            assert_strictly_increasing(np.array([2.0, 1.0]), "dom")

    def test_psd_diagonal(self):
        assert_psd_diagonal(np.eye(3), "S")
        with pytest.raises(NumericsError, match="negative diagonal"):
            assert_psd_diagonal(-np.eye(3), "S")
        with pytest.raises(NumericsError, match="not square"):
            assert_psd_diagonal(np.ones((2, 3)), "S")
        with pytest.raises(NumericsError, match="not symmetric"):
            assert_psd_diagonal(np.array([[1.0, 2.0], [0.0, 1.0]]), "S")

    def test_helpers_are_noops_when_off(self):
        set_numerics_mode("off")
        assert_all_finite(np.array([np.nan]), "x")
        assert_strictly_increasing(np.array([2.0, 1.0]), "x")
        assert_psd_diagonal(np.ones((2, 3)), "x")


class TestKernelWiring:
    """The sanitizer actually guards the kernels the docs promise."""

    def test_bspline_design_rejects_nonfinite_input(self):
        from repro.gam.bsplines import bspline_design, uniform_knots

        knots = uniform_knots(0.0, 1.0, n_splines=8)
        with pytest.raises(NumericsError):
            bspline_design(np.array([0.5, np.nan]), knots)

    def test_domain_monotonicity_checked(self):
        from repro.core.sampling import build_domain

        domain = build_domain(np.array([0.1, 0.4, 0.9]), "equi-width", k=8)
        assert np.all(np.diff(domain) > 0)

    def test_packed_predict_flags_nonfinite_leaf(self, small_forest):
        from repro.forest.packed import PackedForest

        packed = PackedForest.pack(
            small_forest.trees_, small_forest.init_score_, 5
        )
        packed.leaf_values[:] = np.nan
        X = np.full((4, 5), 0.5)
        with pytest.raises(NumericsError):
            packed.predict_raw(X, use_cache=False)

    def test_explain_pipeline_finite_end_to_end(self, small_forest):
        # A normal fit under strict mode must sail through every guard.
        from repro.core.config import GEFConfig
        from repro.core.explainer import GEF

        config = GEFConfig(n_samples=600, k_points=8, n_splines=6)
        explanation = GEF(config).explain(small_forest)
        assert np.isfinite(explanation.fidelity["r2"])
