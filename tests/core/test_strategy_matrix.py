"""Smoke matrix: every sampling strategy x model type runs end to end."""

import numpy as np
import pytest

from repro.core import GEF, SAMPLING_STRATEGY_NAMES


@pytest.mark.parametrize("strategy", SAMPLING_STRATEGY_NAMES)
class TestStrategyOnRegressor:
    def test_pipeline_runs_and_fits(self, strategy, small_forest):
        explanation = GEF(
            n_univariate=3,
            sampling_strategy=strategy,
            k_points=40,
            n_samples=2500,
            n_splines=10,
            random_state=0,
        ).explain(small_forest)
        assert explanation.fidelity["r2"] > 0.5
        assert len(explanation.features) == 3
        # Every selected feature has a usable domain.
        for f in explanation.features:
            assert len(explanation.dataset.domains[f]) >= 2


@pytest.mark.parametrize("strategy", SAMPLING_STRATEGY_NAMES)
class TestStrategyOnClassifier:
    def test_pipeline_runs_and_fits(self, strategy, small_classifier):
        explanation = GEF(
            n_univariate=2,
            sampling_strategy=strategy,
            k_points=40,
            n_samples=2500,
            n_splines=8,
            random_state=0,
        ).explain(small_classifier)
        preds = explanation.predict(explanation.dataset.X_test)
        assert np.all((preds >= 0) & (preds <= 1))
        assert explanation.fidelity["rmse"] < 0.25


@pytest.mark.parametrize(
    "interaction_strategy", ("pair-gain", "count-path", "gain-path")
)
class TestInteractionStrategyMatrix:
    def test_pipeline_with_tensors(self, interaction_strategy, interaction_forest):
        explanation = GEF(
            n_univariate=5,
            n_interactions=2,
            interaction_strategy=interaction_strategy,
            n_samples=2500,
            n_splines=8,
            random_state=0,
        ).explain(interaction_forest)
        assert len(explanation.pairs) == 2
        curves = explanation.global_explanation(n_points=12)
        assert sum(len(c.features) == 2 for c in curves) == 2
