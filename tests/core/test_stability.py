"""Tests for cross-seed explanation stability."""

import numpy as np
import pytest

from repro.core import GEFConfig, stability_analysis


@pytest.fixture(scope="module")
def report(small_forest):
    config = GEFConfig(
        n_univariate=5,
        sampling_strategy="all-thresholds",
        n_samples=4000,
        n_splines=14,
    )
    return stability_analysis(small_forest, config, seeds=[0, 1, 2])


class TestStabilityAnalysis:
    def test_feature_selection_is_seed_independent(self, report):
        """F' comes from the forest's gains, not from D*: identical sets."""
        assert report.feature_agreement == 1.0
        first = set(report.feature_sets[0])
        for fs in report.feature_sets[1:]:
            assert set(fs) == first

    def test_fidelity_consistent_across_seeds(self, report):
        r2 = np.asarray(report.fidelity_r2)
        assert r2.min() > 0.85
        assert r2.max() - r2.min() < 0.05

    def test_component_curves_stable(self, report):
        """Cross-seed curve spread well below the curve's own range."""
        assert report.component_spread
        for feature, spread in report.component_spread.items():
            assert spread < 0.15, f"x{feature} unstable: {spread:.3f}"

    def test_summary_renders(self, report):
        text = report.summary()
        assert "F' agreement" in text
        assert "fidelity R2" in text

    def test_needs_two_seeds(self, small_forest):
        with pytest.raises(ValueError):
            stability_analysis(small_forest, seeds=[0])


class TestLinearTermInGam:
    def test_linear_term_fits_linear_effect(self):
        from repro.gam import GAM, LinearTerm, SplineTerm

        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (2000, 2))
        y = 3 * X[:, 0] + np.sin(6 * X[:, 1]) + rng.normal(0, 0.05, 2000)
        gam = GAM([LinearTerm(0), SplineTerm(1, 10)], lam=0.1).fit(X, y)
        # The linear term's single coefficient is the slope.
        sl = gam._term_slices()[1]
        assert float(gam.coef_[sl][0]) == pytest.approx(3.0, abs=0.1)

    def test_linear_term_centered(self):
        from repro.gam import LinearTerm

        rng = np.random.default_rng(1)
        X = rng.uniform(3, 5, (500, 1))
        term = LinearTerm(0).fit(X)
        design = term.design(X)
        assert abs(design.mean()) < 1e-10

    def test_label(self):
        from repro.gam import LinearTerm

        assert LinearTerm(3).label == "l(x3)"
        assert LinearTerm(3, name="l(age)").label == "l(age)"

    def test_pure_glm_from_terms(self):
        """A GAM of LinearTerms is exactly the GLM of section 3.1."""
        from repro.gam import GAM, LinearTerm

        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, (1500, 3))
        y = 1.0 + 2 * X[:, 0] - X[:, 2] + rng.normal(0, 0.01, 1500)
        gam = GAM([LinearTerm(0), LinearTerm(1), LinearTerm(2)]).fit(X, y)
        resid = y - gam.predict(X)
        assert np.std(resid) < 0.02
        assert gam.intercept_ == pytest.approx(np.mean(y), abs=0.01)
