"""Repository hygiene: public API consistency and example health."""

import importlib
import py_compile
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

PACKAGES = [
    "repro",
    "repro.core",
    "repro.forest",
    "repro.gam",
    "repro.xai",
    "repro.datasets",
    "repro.cluster",
    "repro.metrics",
    "repro.viz",
]


class TestPublicApi:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        """Every name in __all__ must actually exist on the package."""
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        exports = getattr(module, "__all__", [])
        assert len(exports) == len(set(exports)), f"duplicates in {package}.__all__"

    # Docstring coverage of exported symbols is now enforced statically
    # (with exact file:line findings) by the ``undocumented-public`` rule
    # of ``repro check`` — see tests/devtools/test_check_gate.py.


class TestExamples:
    @pytest.mark.parametrize(
        "example",
        sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py")),
    )
    def test_example_compiles(self, example):
        """Every example is at least syntactically valid with a docstring."""
        path = REPO_ROOT / "examples" / example
        py_compile.compile(str(path), doraise=True)
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{example} lacks a docstring"
        assert "def main()" in source

    def test_at_least_three_examples(self):
        examples = list((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / name).exists(), f"{name} missing"

    def test_design_indexes_every_benchmark(self):
        """Each benchmark file must be referenced from DESIGN.md."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for bench in sorted((REPO_ROOT / "benchmarks").glob("test_*.py")):
            if bench.name.startswith("test_ablation"):
                continue  # the ablation section lists them collectively
            if bench.name in (
                "test_stability_analysis.py",
                "test_multiclass_extension.py",
            ):
                continue  # extensions documented in EXPERIMENTS.md
            assert bench.name in design, f"{bench.name} not indexed in DESIGN.md"

    def test_experiments_covers_every_figure_and_table(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for item in (
            "Figure 3", "Figure 4", "Figure 5", "Table 1", "Figure 6",
            "Table 2", "Figure 7", "Figure 8", "Figures 9/10",
            "Figures 11/12/13",
        ):
            assert item in experiments, f"{item} missing from EXPERIMENTS.md"
