"""Summary of merged multi-process traces: per-pid lanes, scoped coverage."""

from __future__ import annotations

import pytest

from repro.obs.summary import (
    pid_breakdown,
    stage_totals,
    summarize_trace,
    trace_coverage,
)


def _event(name, pid, ts, dur, span_id, parent_id=None, trace_id=None):
    return {
        "name": name,
        "ph": "X",
        "cat": "gef",
        "ts": ts * 1e6,
        "dur": dur * 1e6,
        "pid": pid,
        "tid": 1,
        "args": {
            "span_id": span_id,
            "parent_id": parent_id,
            "trace_id": trace_id,
        },
    }


def _merged_payload():
    """A front-end lane owning the ``explain`` root + two worker lanes."""
    events = [
        # pid 1: explain root with stage children covering 96% of it
        _event("explain", 1, 0.0, 10.0, 1),
        _event("stage.fit_forest", 1, 0.0, 6.0, 2, parent_id=1),
        _event("stage.fit_gam", 1, 6.0, 3.6, 3, parent_id=1),
        # pid 4001: worker spans, parented into the pid-1 trace
        _event("worker.predict", 4001, 0.1, 0.5, 4_000_001, parent_id=1),
        _event("forest.predict", 4001, 0.2, 0.3, 4_000_002,
               parent_id=4_000_001),
        # pid 4002: a detached worker lane
        _event("worker.predict", 4002, 0.0, 0.25, 5_000_001),
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class TestScopedCoverage:
    def test_worker_lanes_do_not_dilute_the_gate(self):
        payload = _merged_payload()
        # stage spans cover 9.6 of the 10.0 root seconds: exactly 96%,
        # which must clear the >=95% acceptance gate even though worker
        # lanes add spans that belong to no stage.
        assert trace_coverage(payload) == pytest.approx(0.96)

    def test_stage_totals_scoped_to_root_lanes(self):
        totals = stage_totals(_merged_payload())
        assert set(totals) == {"stage.fit_forest", "stage.fit_gam"}
        assert totals["stage.fit_forest"]["seconds"] == pytest.approx(6.0)

    def test_rootless_trace_keeps_all_events(self):
        payload = {
            "traceEvents": [
                _event("stage.fit_forest", 7, 0.0, 1.0, 1),
            ]
        }
        assert stage_totals(payload)["stage.fit_forest"]["count"] == 1
        assert trace_coverage(payload) == 0.0


class TestPidBreakdown:
    def test_one_entry_per_lane_sorted(self):
        breakdown = pid_breakdown(_merged_payload())
        assert list(breakdown) == [1, 4001, 4002]

    def test_busy_counts_lane_roots_only(self):
        breakdown = pid_breakdown(_merged_payload())
        # pid 1: only the explain root (stages are its children)
        assert breakdown[1]["busy_s"] == pytest.approx(10.0)
        assert breakdown[1]["spans"] == 3
        assert breakdown[1]["roots"] == 1
        # pid 4001: worker.predict's parent (span 1) lives in ANOTHER
        # lane, so it is a root of this lane; its own child is not.
        assert breakdown[4001]["busy_s"] == pytest.approx(0.5)
        assert breakdown[4001]["roots"] == 0
        assert breakdown[4002]["busy_s"] == pytest.approx(0.25)

    def test_single_lane_trace(self):
        payload = {"traceEvents": [_event("explain", 1, 0.0, 2.0, 1)]}
        assert pid_breakdown(payload) == {
            1: {"spans": 1, "busy_s": 2.0, "roots": 1}
        }


class TestSummarizeTrace:
    def test_multi_pid_trace_renders_lane_table(self):
        text = summarize_trace(_merged_payload())
        assert "per-process lanes:" in text
        for pid in ("1", "4001", "4002"):
            assert any(
                line.strip().startswith(pid)
                for line in text.splitlines()
            )
        assert "span coverage of end-to-end wall time: 96.0%" in text

    def test_single_pid_trace_has_no_lane_table(self):
        payload = {
            "traceEvents": [
                _event("explain", 1, 0.0, 1.0, 1),
                _event("stage.fit_gam", 1, 0.0, 1.0, 2, parent_id=1),
            ]
        }
        text = summarize_trace(payload)
        assert "per-process lanes:" not in text
        assert "100.0%" in text
