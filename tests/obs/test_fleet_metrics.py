"""Fleet metrics aggregation: delta merge, restarts, Prometheus schema."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    MetricsAggregator,
    MetricsRegistry,
    fleet_to_prometheus,
    to_prometheus,
    validate_prometheus_text,
)


def _snap(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def _hist(buckets, total=None, minimum=0.1, maximum=8.0):
    count = sum(buckets.values())
    return {
        "count": count,
        "sum": total if total is not None else float(count),
        "min": minimum,
        "max": maximum,
        "buckets": dict(buckets),
    }


class TestCounterMerge:
    def test_successive_snapshots_do_not_double_count(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 10.0}))
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 25.0}))
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 25.0}))
        assert agg.fleet_snapshot()["counters"]["predict.rows"] == 25.0

    def test_workers_sum(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 10.0}))
        agg.ingest("w1", 101, _snap(counters={"predict.rows": 7.0}))
        assert agg.fleet_snapshot()["counters"]["predict.rows"] == 17.0
        series = agg.worker_series()
        assert series["w0"]["counters"]["predict.rows"] == 10.0
        assert series["w1"]["counters"]["predict.rows"] == 7.0
        assert series["w0"]["pid"] == 100

    def test_pid_change_resets_baseline(self):
        # The slot's process crashed and was replaced: the new process
        # reports small absolute values that must ADD to the old total,
        # not register as a negative delta.
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 50.0}))
        agg.ingest("w0", 200, _snap(counters={"predict.rows": 7.0}))
        assert agg.fleet_snapshot()["counters"]["predict.rows"] == 57.0
        assert agg.worker_series()["w0"]["pid"] == 200

    def test_in_process_counter_reset_detected(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 50.0}))
        # Same pid, shrinking value: registry was re-enabled in place.
        agg.ingest("w0", 100, _snap(counters={"predict.rows": 7.0}))
        assert agg.fleet_snapshot()["counters"]["predict.rows"] == 57.0


class TestGaugeMerge:
    def test_last_write_wins_per_worker_sum_across_workers(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(gauges={"serve.queue_depth": 3.0}))
        agg.ingest("w0", 100, _snap(gauges={"serve.queue_depth": 1.0}))
        agg.ingest("w1", 101, _snap(gauges={"serve.queue_depth": 2.0}))
        assert agg.fleet_snapshot()["gauges"]["serve.queue_depth"] == 3.0
        assert agg.worker_series()["w0"]["gauges"]["serve.queue_depth"] == 1.0


class TestHistogramMerge:
    def test_buckets_sum_across_workers(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 3, "2^0": 1}, total=1.3),
        }))
        agg.ingest("w1", 101, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 2, "2^2": 1}, total=4.2),
        }))
        hist = agg.fleet_snapshot()["histograms"]["serve.latency_s"]
        assert hist["buckets"] == {"2^-2": 5, "2^0": 1, "2^2": 1}
        assert hist["count"] == 7
        assert hist["sum"] == pytest.approx(5.5)

    def test_successive_snapshots_merge_deltas_only(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 3}),
        }))
        agg.ingest("w0", 100, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 3, "2^0": 2}),
        }))
        hist = agg.fleet_snapshot()["histograms"]["serve.latency_s"]
        assert hist["buckets"] == {"2^-2": 3, "2^0": 2}
        assert hist["count"] == 5

    def test_restart_keeps_old_counts_and_adds_new(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 4}),
        }))
        agg.ingest("w0", 200, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 1, "2^0": 2}),
        }))
        hist = agg.fleet_snapshot()["histograms"]["serve.latency_s"]
        assert hist["buckets"] == {"2^-2": 5, "2^0": 2}
        assert hist["count"] == 7

    def test_min_max_are_lifetime_extremes(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(histograms={
            "h": _hist({"2^0": 1}, minimum=0.5, maximum=1.0),
        }))
        agg.ingest("w0", 200, _snap(histograms={
            "h": _hist({"2^2": 1}, minimum=2.0, maximum=4.0),
        }))
        hist = agg.fleet_snapshot()["histograms"]["h"]
        assert hist["min"] == 0.5
        assert hist["max"] == 4.0

    def test_merged_exposition_keeps_cumulative_le_invariant(self):
        # Satellite: after N snapshots from several workers AND a
        # restart, the merged histogram must still render as a valid
        # cumulative-le Prometheus histogram whose +Inf bucket equals
        # _count.
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 3, "2^0": 1}),
        }))
        agg.ingest("w1", 101, _snap(histograms={
            "serve.latency_s": _hist({"2^-4": 2, "2^0": 2}),
        }))
        agg.ingest("w0", 100, _snap(histograms={
            "serve.latency_s": _hist({"2^-2": 5, "2^0": 1, "2^4": 1}),
        }))
        agg.ingest("w0", 200, _snap(histograms={   # crash + replacement
            "serve.latency_s": _hist({"2^-2": 1}),
        }))
        text = to_prometheus(agg.fleet_snapshot())
        assert validate_prometheus_text(text) > 0
        lines = [
            line for line in text.splitlines()
            if line.startswith("serve_latency_s_bucket")
        ]
        values = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert values == sorted(values)            # cumulative
        assert lines[-1].startswith('serve_latency_s_bucket{le="+Inf"}')
        assert values[-1] == 12.0                  # 4 + 4 + 3 + 1


class TestFleetToPrometheus:
    def _populated(self):
        agg = MetricsAggregator()
        agg.ingest("w0", 100, _snap(
            counters={"predict.rows": 10.0},
            gauges={"serve.queue_depth": 1.0},
            histograms={"serve.latency_s": _hist({"2^-2": 2})},
        ))
        agg.ingest("w1", 101, _snap(
            counters={"predict.rows": 4.0},
            gauges={"serve.queue_depth": 0.0},
        ))
        return agg

    def test_round_trip_validates(self):
        text = fleet_to_prometheus(self._populated())
        assert validate_prometheus_text(text) > 0

    def test_fleet_totals_and_labeled_series(self):
        text = fleet_to_prometheus(self._populated())
        assert "fleet_predict_rows_total 14" in text
        assert 'fleet_worker_predict_rows_total{worker="w0"} 10' in text
        assert 'fleet_worker_predict_rows_total{worker="w1"} 4' in text
        assert 'fleet_worker_serve_queue_depth{worker="w0"} 1' in text

    def test_empty_aggregator_renders_nothing(self):
        assert fleet_to_prometheus(MetricsAggregator()) == ""
        assert validate_prometheus_text("") == 0

    def test_real_registry_snapshot_survives_aggregation(self):
        # End to end with a real registry rather than hand-built dicts.
        registry = MetricsRegistry()
        registry.inc("predict.rows", 32)
        for value in (0.01, 0.2, 0.9, 3.0):
            registry.observe("serve.latency_s", value)
        agg = MetricsAggregator()
        agg.ingest("w0", 100, registry.snapshot())
        registry.inc("predict.rows", 8)
        registry.observe("serve.latency_s", 0.05)
        agg.ingest("w0", 100, registry.snapshot())
        snapshot = agg.fleet_snapshot()
        assert snapshot["counters"]["predict.rows"] == 40.0
        assert snapshot["histograms"]["serve.latency_s"]["count"] == 5
        assert validate_prometheus_text(fleet_to_prometheus(agg)) > 0


class TestValidatorRejections:
    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.25"} 5\n'
            'h_bucket{le="1.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 2.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            validate_prometheus_text(text)

    def test_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.25"} 5\n'
            "h_sum 2.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(text)

    def test_rejects_count_bucket_disagreement(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 2.0\n"
            "h_count 6\n"
        )
        with pytest.raises(ValueError, match="disagrees"):
            validate_prometheus_text(text)

    def test_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="TYPE"):
            validate_prometheus_text("orphan_total 3\n")

    def test_rejects_malformed_labels(self):
        text = '# TYPE c_total counter\nc_total{worker=w0} 3\n'
        with pytest.raises(ValueError, match="malformed"):
            validate_prometheus_text(text)

    def test_labeled_histogram_series_validate_independently(self):
        # Two worker label sets interleave; each is cumulative on its
        # own even though the combined value sequence is not monotone.
        text = (
            "# TYPE h histogram\n"
            'h_bucket{worker="w0",le="0.25"} 5\n'
            'h_bucket{worker="w0",le="+Inf"} 6\n'
            'h_count{worker="w0"} 6\n'
            'h_bucket{worker="w1",le="0.25"} 1\n'
            'h_bucket{worker="w1",le="+Inf"} 2\n'
            'h_count{worker="w1"} 2\n'
        )
        assert validate_prometheus_text(text) == 6

    def test_labeled_series_still_checked(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{worker="w0",le="+Inf"} 6\n'
            'h_count{worker="w0"} 7\n'
        )
        with pytest.raises(ValueError, match="disagrees"):
            validate_prometheus_text(text)
