"""CLI round-trip: ``explain --trace`` then ``trace summarize``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.forest import save_forest
from repro.obs import get_metrics, get_tracer, validate_chrome_trace
from repro.obs.summary import trace_coverage


@pytest.fixture(scope="module")
def model_path(small_forest, tmp_path_factory):
    path = tmp_path_factory.mktemp("obs_cli") / "model.json"
    save_forest(small_forest, path)
    return path


@pytest.fixture(scope="module")
def trace_path(model_path, tmp_path_factory):
    """Run one traced explain through the CLI; return the trace file."""
    path = tmp_path_factory.mktemp("obs_cli_trace") / "trace.json"
    code = main([
        "explain", str(model_path),
        "--splines", "3", "--samples", "2000", "--k", "40",
        "--trace", str(path),
    ])
    assert code == 0
    return path


class TestExplainTrace:
    def test_trace_file_is_valid_chrome_trace(self, trace_path):
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        assert payload["displayTimeUnit"] == "ms"

    def test_trace_covers_wall_time(self, trace_path):
        payload = json.loads(trace_path.read_text())
        assert trace_coverage(payload) >= 0.95

    def test_metrics_snapshot_embedded(self, trace_path):
        payload = json.loads(trace_path.read_text())
        counters = payload["otherData"]["metrics"]["counters"]
        assert counters["predict.rows"] > 0
        assert counters["fit.gcv_candidates"] > 0

    def test_tracing_disabled_after_run(self, trace_path):
        # the CLI must uninstall the tracer/registry in its finally block
        assert get_tracer() is None
        assert get_metrics() is None

    def test_hint_printed(self, model_path, tmp_path, capsys):
        path = tmp_path / "t.json"
        main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "2000", "--k", "40",
            "--trace", str(path),
        ])
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "trace summarize" in out

    def test_untraced_explain_writes_no_trace(self, model_path, tmp_path):
        code = main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "2000", "--k", "40",
        ])
        assert code == 0
        assert not list(tmp_path.iterdir())


class TestTraceSummarize:
    def test_table_printed(self, trace_path, capsys):
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "share" in out
        assert "explain" in out
        assert "stage.fit" in out
        assert "span coverage of end-to-end wall time" in out
        assert "counters:" in out

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        code = main(["trace", "summarize", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_malformed_payload_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        code = main(["trace", "summarize", str(bad)])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_summarize_requires_action(self):
        with pytest.raises(SystemExit):
            main(["trace"])
