"""Observability wired through the GEF pipeline: spans, metrics, records.

One traced explain run is shared module-wide (it is the expensive part);
the stall-determinism test runs its own traced pipeline under
``stall_stage`` fault injection.
"""

from __future__ import annotations

import time

import pytest

from repro.core import GEF, load_explanation, save_explanation
from repro.core.stages import StageReport
from repro.devtools.faultinject import stall_stage
from repro.forest.packed import invalidate_packed
from repro.obs import (
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    validate_chrome_trace,
)
from repro.obs.summary import stage_totals, trace_coverage


def _small_gef(**overrides):
    params = dict(
        n_univariate=3, n_samples=1_500, k_points=50, random_state=0
    )
    params.update(overrides)
    return GEF(**params)


@pytest.fixture(scope="module")
def traced_run(small_forest):
    """One traced+metered explain run: (explanation, tracer, registry)."""
    # Earlier suites may have packed the shared session forest already;
    # drop the cached pack so this run exercises pack.* metrics too.
    invalidate_packed(small_forest)
    tracer = enable_tracing()
    registry = enable_metrics()
    try:
        explanation = _small_gef().explain(small_forest)
    finally:
        disable_tracing()
        disable_metrics()
    return explanation, tracer, registry


class TestPipelineSpans:
    def test_core_stage_spans_present(self, traced_run):
        _, tracer, _ = traced_run
        names = {s.name for s in tracer.spans()}
        for expected in (
            "explain",
            "stage.validate",
            "stage.select",
            "stage.domains",
            "stage.sample",
            "stage.fit",
            "fidelity",
        ):
            assert expected in names, f"missing span {expected}"

    def test_stage_spans_nest_under_explain_root(self, traced_run):
        _, tracer, _ = traced_run
        (root,) = tracer.find("explain")
        (fit,) = tracer.find("stage.fit")
        assert fit.parent_id == root.span_id
        (attempt,) = tracer.find("stage.fit.attempt")
        assert attempt.parent_id == fit.span_id

    def test_span_coverage_meets_acceptance_floor(self, traced_run):
        _, tracer, registry = traced_run
        payload = tracer.to_chrome_trace(
            extra={"metrics": registry.snapshot()}
        )
        validate_chrome_trace(payload)
        assert trace_coverage(payload) >= 0.95

    def test_stage_totals_match_span_durations(self, traced_run):
        _, tracer, _ = traced_run
        totals = stage_totals(tracer.to_chrome_trace())
        (fit,) = tracer.find("stage.fit")
        assert totals["stage.fit"]["seconds"] == pytest.approx(
            fit.duration_s, rel=1e-6
        )


class TestPipelineMetrics:
    def test_counters_populated(self, traced_run):
        _, _, registry = traced_run
        assert registry.counter("predict.rows") > 0
        assert registry.counter("pack.count") >= 1
        assert registry.counter("predict.cache_misses") >= 1
        assert registry.counter("fit.gcv_candidates") > 0

    def test_pack_seconds_histogram_recorded(self, traced_run):
        _, _, registry = traced_run
        hist = registry.snapshot()["histograms"]["pack.seconds"]
        assert hist["count"] >= 1
        assert hist["sum"] >= 0.0

    def test_clean_run_takes_no_retries(self, traced_run):
        _, _, registry = traced_run
        assert registry.counter("sample.retries") == 0.0
        assert registry.counter("fit.rung_descents") == 0.0


class TestStageRecordTiming:
    def test_records_carry_duration_and_span_id(self, traced_run):
        explanation, tracer, _ = traced_run
        report = explanation.stage_report
        for stage in ("validate", "select", "domains", "sample", "fit"):
            rec = report[stage]
            assert rec.duration_s > 0.0
            assert rec.duration_s >= rec.elapsed * 0.99
            span = next(
                s for s in tracer.spans() if s.span_id == rec.span_id
            )
            assert span.name == f"stage.{stage}"

    def test_attempts_carry_durations(self, traced_run):
        explanation, _, _ = traced_run
        for rec in explanation.stage_report.records:
            for attempt in rec.attempts:
                assert attempt.duration_s >= 0.0

    def test_untraced_run_still_times_stages(self, small_forest):
        explanation = _small_gef().explain(small_forest)
        rec = explanation.stage_report["sample"]
        assert rec.duration_s > 0.0
        assert rec.span_id is None


class TestStageReportRoundTrip:
    def test_to_dict_from_dict_preserves_timing(self, traced_run):
        explanation, _, _ = traced_run
        report = explanation.stage_report
        rebuilt = StageReport.from_dict(report.to_dict())
        for original, copy in zip(report.records, rebuilt.records):
            assert copy.duration_s == original.duration_s
            assert copy.span_id == original.span_id
            assert [a.duration_s for a in copy.attempts] == [
                a.duration_s for a in original.attempts
            ]

    def test_from_dict_tolerates_pre_timing_payloads(self):
        old = {
            "records": [
                {
                    "stage": "fit",
                    "status": "ok",
                    "elapsed": 1.25,
                    "fallback": None,
                    "error": None,
                    "attempts": [{"outcome": "ok", "error": None,
                                  "note": None}],
                }
            ]
        }
        report = StageReport.from_dict(old)
        rec = report["fit"]
        assert rec.duration_s == 1.25  # falls back to elapsed
        assert rec.span_id is None
        assert rec.attempts[0].duration_s == 0.0

    def test_archive_round_trip_keeps_timing(self, traced_run, tmp_path):
        explanation, _, _ = traced_run
        path = tmp_path / "explanation.json"
        save_explanation(explanation, path)
        loaded = load_explanation(path)
        original = explanation.stage_report["fit"]
        restored = loaded.stage_report["fit"]
        assert restored.duration_s == pytest.approx(original.duration_s)
        assert restored.span_id == original.span_id


class TestStallDeterminism:
    def test_synthetic_stall_flows_into_span_without_sleeping(
        self, small_forest
    ):
        tracer = enable_tracing()
        wall_start = time.monotonic()
        try:
            with stall_stage("sample", 5.0):
                explanation = _small_gef().explain(small_forest)
        finally:
            disable_tracing()
        wall = time.monotonic() - wall_start
        assert wall < 5.0, "stall must be synthetic, not slept"

        (sample_span,) = tracer.find("stage.sample")
        assert sample_span.duration_s >= 5.0
        rec = explanation.stage_report["sample"]
        assert rec.duration_s >= 5.0
        assert rec.elapsed >= 5.0
        # downstream stages are unaffected by the stall
        assert explanation.stage_report["fit"].duration_s < 5.0
