"""Drift monitor: reservoir sampling, rolling R², skew injection."""

from __future__ import annotations

import pytest

from repro.obs import enable_metrics, get_metrics
from repro.obs.drift import DriftMonitor, ReservoirSampler, r_squared


class TestReservoirSampler:
    def test_fills_to_capacity_then_stays_bounded(self):
        sampler = ReservoirSampler(capacity=8, seed=0)
        for i in range(100):
            sampler.offer(i)
        assert len(sampler) == 8
        assert sampler.seen == 100

    def test_short_stream_is_kept_verbatim(self):
        sampler = ReservoirSampler(capacity=16, seed=0)
        for i in range(5):
            sampler.offer(i)
        assert sampler.sample() == [0, 1, 2, 3, 4]

    def test_same_seed_same_sample(self):
        a = ReservoirSampler(capacity=4, seed=7)
        b = ReservoirSampler(capacity=4, seed=7)
        for i in range(200):
            a.offer(i)
            b.offer(i)
        assert a.sample() == b.sample()

    def test_different_seeds_diverge(self):
        a = ReservoirSampler(capacity=4, seed=0)
        b = ReservoirSampler(capacity=4, seed=1)
        for i in range(200):
            a.offer(i)
            b.offer(i)
        assert a.sample() != b.sample()

    def test_sample_is_roughly_uniform(self):
        # Offer 0..999 into a capacity-100 reservoir: the retained items
        # should span the stream, not cluster at the head or tail.
        sampler = ReservoirSampler(capacity=100, seed=3)
        for i in range(1000):
            sampler.offer(i)
        kept = sampler.sample()
        assert len(kept) == 100
        early = sum(1 for v in kept if v < 500)
        assert 25 <= early <= 75

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            ReservoirSampler(capacity=0)


class TestRSquared:
    def test_perfect_fit(self):
        assert r_squared([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_known_value(self):
        truth = [1.0, 2.0, 3.0, 4.0]
        approx = [1.5, 1.5, 3.5, 3.5]
        # ss_res = 4 * 0.25 = 1.0, ss_tot = 5.0
        assert r_squared(truth, approx) == pytest.approx(0.8)

    def test_constant_truth_degenerates_to_exact_match(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r_squared([2.0, 2.0], [2.0, 2.1]) == 0.0

    def test_constant_offset_formula(self):
        # Skewing predictions by c costs exactly n*c^2/ss_tot of R² —
        # the identity the SLO chaos test uses to pick offsets.
        truth = [0.0, 1.0, 2.0, 3.0]
        mean = sum(truth) / 4
        ss_tot = sum((t - mean) ** 2 for t in truth)
        c = 0.7
        skewed = [t + c for t in truth]
        assert r_squared(truth, skewed) == pytest.approx(
            1.0 - 4 * c**2 / ss_tot
        )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="equal-length"):
            r_squared([], [])
        with pytest.raises(ValueError, match="equal-length"):
            r_squared([1.0], [1.0, 2.0])


def _feed(monitor, model_id, n, score=None):
    rows = [[float(i), float(i + 1)] for i in range(n)]
    scores = [float(i) if score is None else score for i in range(n)]
    monitor.observe(model_id, rows, scores)
    return rows, scores


class TestDriftMonitor:
    def test_observe_is_raise_free_on_mismatch(self):
        monitor = DriftMonitor(capacity=8, min_samples=1)
        monitor.observe("m", [[1.0]], [1.0, 2.0])   # mismatched: dropped
        monitor.observe("m", [], [])                 # empty: dropped
        assert monitor.samples() == {}

    def test_evaluate_replays_reservoir_exactly(self):
        monitor = DriftMonitor(capacity=64, min_samples=4, clock=lambda: 5.0)
        _feed(monitor, "m", 10)
        result = monitor.evaluate(lambda mid, rows: [r[0] for r in rows])
        assert result["fidelity"] == 1.0
        assert result["models"]["m"]["samples"] == 10
        assert result["samples"] == 10
        assert result["at_s"] == 5.0
        assert monitor.last() == result

    def test_min_samples_gate(self):
        monitor = DriftMonitor(capacity=64, min_samples=16)
        _feed(monitor, "m", 10)
        result = monitor.evaluate(lambda mid, rows: [0.0] * len(rows))
        assert result["fidelity"] is None
        assert result["models"] == {}

    def test_uncached_surrogate_is_skipped(self):
        monitor = DriftMonitor(capacity=64, min_samples=4)
        _feed(monitor, "m", 10)
        result = monitor.evaluate(lambda mid, rows: None)
        assert result["fidelity"] is None

    def test_fleet_fidelity_is_worst_model(self):
        monitor = DriftMonitor(capacity=64, min_samples=4)
        _feed(monitor, "good", 10)
        _feed(monitor, "bad", 10)

        def predict_for(mid, rows):
            if mid == "good":
                return [r[0] for r in rows]
            return [0.0] * len(rows)   # ignores the input entirely

        result = monitor.evaluate(predict_for)
        assert result["models"]["good"]["fidelity"] == 1.0
        assert result["models"]["bad"]["fidelity"] < 0.5
        assert result["fidelity"] == result["models"]["bad"]["fidelity"]

    def test_skew_degrades_fidelity_by_exact_amount(self):
        monitor = DriftMonitor(capacity=64, min_samples=4)
        _, scores = _feed(monitor, "m", 10)
        mean = sum(scores) / len(scores)
        ss_tot = sum((s - mean) ** 2 for s in scores)
        skew = 2.5
        monitor.set_skew(skew)
        result = monitor.evaluate(lambda mid, rows: [r[0] for r in rows])
        expected = 1.0 - len(scores) * skew**2 / ss_tot
        assert result["fidelity"] == pytest.approx(expected)
        monitor.set_skew(0.0)
        assert monitor.evaluate(
            lambda mid, rows: [r[0] for r in rows]
        )["fidelity"] == 1.0

    def test_forget_drops_reservoir(self):
        monitor = DriftMonitor(capacity=8, min_samples=1)
        _feed(monitor, "m", 4)
        monitor.forget("m")
        assert monitor.samples() == {}

    def test_reset_clears_skew_and_state(self):
        monitor = DriftMonitor(capacity=8, min_samples=1)
        _feed(monitor, "m", 4)
        monitor.set_skew(9.0)
        monitor.evaluate(lambda mid, rows: [0.0] * len(rows))
        monitor.reset()
        assert monitor.samples() == {}
        assert monitor.last() is None

    def test_per_model_reservoirs_are_deterministic(self):
        def run():
            monitor = DriftMonitor(capacity=4, seed=11, min_samples=1)
            for mid in ("a", "b"):
                for i in range(50):
                    monitor.observe(mid, [[float(i)]], [float(i)])
            return monitor.samples()

        assert run() == run()

    def test_metrics_emitted(self):
        enable_metrics()
        monitor = DriftMonitor(capacity=8, min_samples=1)
        _feed(monitor, "m", 4)
        monitor.evaluate(lambda mid, rows: [r[0] for r in rows])
        snapshot = get_metrics().snapshot()
        assert snapshot["counters"]["drift.observed"] == 4
        assert snapshot["counters"]["drift.evaluations"] == 1
        assert snapshot["gauges"]["drift.fidelity"] == 1.0
