"""Observability test fixtures: never leak an enabled tracer/registry."""

from __future__ import annotations

import pytest

from repro.obs import (
    clear_span_observers,
    disable_metrics,
    disable_tracing,
)


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    """Tracing/metrics/observers are global knobs; reset around each test."""
    disable_tracing()
    disable_metrics()
    clear_span_observers()
    yield
    disable_tracing()
    disable_metrics()
    clear_span_observers()
