"""Metrics registry: values, snapshots, concurrency, disabled no-ops."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    inc,
    observe,
    set_gauge,
)


class TestCounters:
    def test_default_increment_is_one(self):
        reg = MetricsRegistry()
        reg.inc("predict.rows")
        reg.inc("predict.rows")
        assert reg.counter("predict.rows") == 2.0

    def test_increment_with_value(self):
        reg = MetricsRegistry()
        reg.inc("predict.rows", 4000)
        reg.inc("predict.rows", 500)
        assert reg.counter("predict.rows") == 4500.0

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("never.touched") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("degrade.rung", 1)
        reg.set_gauge("degrade.rung", 3)
        assert reg.gauge("degrade.rung") == 3.0

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge("never.set") is None


class TestHistograms:
    def test_count_sum_min_max_mean(self):
        reg = MetricsRegistry()
        for v in (0.5, 2.0, 8.0):
            reg.observe("pack.seconds", v)
        hist = reg.snapshot()["histograms"]["pack.seconds"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(10.5)
        assert hist["min"] == pytest.approx(0.5)
        assert hist["max"] == pytest.approx(8.0)
        assert hist["mean"] == pytest.approx(3.5)

    def test_log2_buckets(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.3)   # 2^ceil(log2(0.3)) = 2^-1
        reg.observe("h", 3.0)   # 2^2
        reg.observe("h", 4.0)   # 2^2 (exact power)
        reg.observe("h", 0.0)   # <=0 bucket
        buckets = reg.snapshot()["histograms"]["h"]["buckets"]
        assert buckets == {"2^-1": 1, "2^2": 2, "<=0": 1}

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        snap["histograms"]["h"]["buckets"]["2^0"] = 99
        assert reg.snapshot()["histograms"]["h"]["buckets"]["2^0"] == 1


class TestSnapshotAndReset:
    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7)
        reg.observe("h", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert set(snap["histograms"]) == {"h"}

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestConcurrency:
    def test_threaded_increments_are_exact(self):
        reg = MetricsRegistry()
        n_threads, n_incs = 8, 1000

        def hammer():
            for _ in range(n_incs):
                reg.inc("hits")
                reg.observe("lat", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits") == float(n_threads * n_incs)
        assert reg.snapshot()["histograms"]["lat"]["count"] == n_threads * n_incs


class TestModuleHelpers:
    def test_disabled_helpers_are_noops(self):
        assert get_metrics() is None
        inc("a")
        set_gauge("b", 1)
        observe("c", 1.0)
        # still nothing installed, nothing raised
        assert get_metrics() is None

    def test_enabled_helpers_route_to_registry(self):
        reg = enable_metrics()
        assert get_metrics() is reg
        inc("a", 3)
        set_gauge("b", 2)
        observe("c", 4.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3.0}
        assert snap["gauges"] == {"b": 2.0}
        assert snap["histograms"]["c"]["count"] == 1

    def test_enable_installs_fresh_registry(self):
        first = enable_metrics()
        first.inc("a")
        second = enable_metrics()
        assert second is not first
        assert second.counter("a") == 0.0

    def test_disable_returns_registry_for_inspection(self):
        reg = enable_metrics()
        inc("kept", 5)
        returned = disable_metrics()
        assert returned is reg
        assert returned.counter("kept") == 5.0
        assert get_metrics() is None


class TestPrometheusExposition:
    """to_prometheus / validate_prometheus_text — the /metrics contract."""

    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("serve.requests", 7)
        reg.inc("surrogate.fits")
        reg.set_gauge("degrade.rung", 2)
        for value in (0.5, 1.5, 3.0, 0.0):
            reg.observe("serve.latency_s", value)
        return reg

    def test_counters_gain_total_suffix(self):
        from repro.obs import to_prometheus

        text = to_prometheus(self._populated().snapshot())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 7.0" in text
        assert "surrogate_fits_total 1.0" in text

    def test_gauges_and_histograms_render(self):
        from repro.obs import to_prometheus

        text = to_prometheus(self._populated().snapshot())
        assert "# TYPE degrade_rung gauge" in text
        assert "# TYPE serve_latency_s histogram" in text
        # Log2 buckets become cumulative le-bounded series: the sample 0.0
        # lands in le="0.0", 0.5 in le="0.5" (2^-1), 1.5 in le="2.0",
        # 3.0 in le="4.0"; the mandatory +Inf bucket equals the count.
        assert 'serve_latency_s_bucket{le="0.0"} 1' in text
        assert 'serve_latency_s_bucket{le="+Inf"} 4' in text
        assert "serve_latency_s_count 4" in text

    def test_validator_accepts_own_output(self):
        from repro.obs import to_prometheus, validate_prometheus_text

        text = to_prometheus(self._populated().snapshot())
        assert validate_prometheus_text(text) > 0

    def test_validator_rejects_malformed_sample(self):
        from repro.obs import validate_prometheus_text

        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus_text(
                "# TYPE x counter\nx one_point_five\n"
            )

    def test_validator_rejects_undeclared_family(self):
        from repro.obs import validate_prometheus_text

        with pytest.raises(ValueError, match="no # TYPE"):
            validate_prometheus_text("mystery_metric 1\n")

    def test_validator_rejects_noncumulative_buckets(self):
        from repro.obs import validate_prometheus_text

        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="2.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            validate_prometheus_text(bad)

    def test_validator_rejects_missing_inf_bucket(self):
        from repro.obs import validate_prometheus_text

        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            "h_sum 4.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(bad)

    def test_validator_rejects_count_disagreement(self):
        from repro.obs import validate_prometheus_text

        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4.0\n"
            "h_count 6\n"
        )
        with pytest.raises(ValueError, match="disagrees"):
            validate_prometheus_text(bad)

    def test_uses_installed_registry_by_default(self):
        from repro.obs import to_prometheus

        enable_metrics()
        inc("serve.requests", 3)
        try:
            assert "serve_requests_total 3.0" in to_prometheus()
        finally:
            disable_metrics()
        assert to_prometheus() == "\n"  # metrics off: empty exposition
