"""SLO engine: rule levels, hysteresis, transitions, quantiles."""

from __future__ import annotations

import pytest

from repro.obs import enable_metrics, get_metrics
from repro.obs.slo import (
    LEVELS,
    SloConfig,
    SloEngine,
    SloRule,
    default_slo_config,
    quantile_from_histogram,
)


def _engine(clock, **kwargs):
    return SloEngine(default_slo_config(**kwargs), clock=lambda: clock[0])


class TestSloRule:
    def test_min_rule_levels(self):
        rule = SloRule(
            name="f", metric="fidelity", kind="min", warn=0.9, breach=0.8
        )
        assert rule.level(0.95) == "ok"
        assert rule.level(0.85) == "warn"
        assert rule.level(0.5) == "breach"

    def test_max_rule_levels(self):
        rule = SloRule(
            name="p99", metric="p99_latency_s", kind="max",
            warn=0.25, breach=1.0,
        )
        assert rule.level(0.1) == "ok"
        assert rule.level(0.5) == "warn"
        assert rule.level(2.0) == "breach"

    def test_thresholds_are_inclusive_on_the_ok_side(self):
        rule = SloRule(
            name="e", metric="error_rate", kind="max", warn=0.01, breach=0.04
        )
        assert rule.level(0.01) == "ok"
        assert rule.level(0.04) == "warn"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="max|min"):
            SloRule(name="x", metric="m", kind="median", warn=1, breach=2)

    def test_misordered_thresholds_rejected(self):
        with pytest.raises(ValueError, match="ordered"):
            SloRule(name="x", metric="m", kind="max", warn=2.0, breach=1.0)
        with pytest.raises(ValueError, match="ordered"):
            SloRule(name="x", metric="m", kind="min", warn=0.5, breach=0.9)

    def test_config_recover_after_validated(self):
        with pytest.raises(ValueError, match="recover_after"):
            SloConfig(recover_after=0)


class TestHysteresis:
    def test_escalation_is_immediate(self):
        clock = [0.0]
        engine = _engine(clock)
        assert engine.evaluate({"fidelity": 0.95}) == "ok"
        assert engine.evaluate({"fidelity": 0.85}) == "warn"
        assert engine.evaluate({"fidelity": 0.5}) == "breach"

    def test_recovery_needs_consecutive_good_evaluations(self):
        clock = [0.0]
        engine = _engine(clock)
        engine.evaluate({"fidelity": 0.5})
        assert engine.state() == "breach"
        # recover_after=2: one good tick is not enough
        assert engine.evaluate({"fidelity": 0.95}) == "breach"
        assert engine.evaluate({"fidelity": 0.95}) == "ok"

    def test_flapping_resets_the_recovery_streak(self):
        clock = [0.0]
        engine = _engine(clock)
        engine.evaluate({"fidelity": 0.5})
        engine.evaluate({"fidelity": 0.95})   # streak 1
        engine.evaluate({"fidelity": 0.5})    # bad again: streak reset
        assert engine.evaluate({"fidelity": 0.95}) == "breach"
        assert engine.evaluate({"fidelity": 0.95}) == "ok"

    def test_partial_deescalation_breach_to_warn(self):
        clock = [0.0]
        engine = _engine(clock)
        engine.evaluate({"fidelity": 0.5})
        engine.evaluate({"fidelity": 0.85})
        assert engine.evaluate({"fidelity": 0.85}) == "warn"
        view = engine.view()
        assert view["transitions"][-1]["reason"] == "de-escalated"

    def test_full_cycle_records_recovered(self):
        clock = [0.0]
        engine = _engine(clock)
        for value in (0.95, 0.85, 0.5, 0.95, 0.95):
            clock[0] += 5.0
            engine.evaluate({"fidelity": value})
        transitions = engine.view()["transitions"]
        assert [t["to"] for t in transitions] == ["warn", "breach", "ok"]
        assert transitions[-1]["reason"] == "recovered"
        # timestamps come from the injected clock, strictly ordered
        stamps = [t["at_s"] for t in transitions]
        assert stamps == sorted(stamps)

    def test_missing_value_keeps_state(self):
        clock = [0.0]
        engine = _engine(clock)
        engine.evaluate({"fidelity": 0.5})
        # None and absent both mean "signal not warmed up": no change,
        # and crucially no recovery-streak credit either.
        assert engine.evaluate({"fidelity": None}) == "breach"
        assert engine.evaluate({}) == "breach"
        assert engine.evaluate({"fidelity": 0.95}) == "breach"
        assert engine.evaluate({"fidelity": 0.95}) == "ok"

    def test_overall_state_is_worst_rule(self):
        clock = [0.0]
        engine = _engine(clock)
        state = engine.evaluate(
            {"fidelity": 0.95, "p99_latency_s": 0.5, "error_rate": 0.0}
        )
        assert state == "warn"
        rules = engine.view()["rules"]
        assert rules["fidelity_floor"]["level"] == "ok"
        assert rules["p99_latency"]["level"] == "warn"


class TestTransitionLog:
    def test_log_is_bounded(self):
        clock = [0.0]
        config = default_slo_config(transition_log=4, recover_after=1)
        engine = SloEngine(config, clock=lambda: clock[0])
        for i in range(20):
            engine.evaluate({"fidelity": 0.5 if i % 2 else 0.95})
        assert len(engine.view()["transitions"]) == 4

    def test_reset_clears_everything(self):
        clock = [0.0]
        engine = _engine(clock)
        engine.evaluate({"fidelity": 0.5})
        engine.reset()
        view = engine.view()
        assert view["state"] == "ok"
        assert view["transitions"] == []
        assert view["evaluations"] == 0


class TestSloMetrics:
    def test_gauge_and_counters_emitted(self):
        enable_metrics()
        clock = [0.0]
        engine = _engine(clock)
        engine.evaluate({"fidelity": 0.5})
        snapshot = get_metrics().snapshot()
        assert snapshot["gauges"]["slo.level"] == float(LEVELS.index("breach"))
        assert snapshot["counters"]["slo.evaluations"] == 1
        assert snapshot["counters"]["slo.transitions.breach"] == 1


class TestQuantileFromHistogram:
    def test_walks_cumulative_buckets(self):
        hist = {
            "count": 10,
            "sum": 5.0,
            "min": 0.1,
            "max": 3.0,
            "buckets": {"<=0": 0, "2^-2": 5, "2^0": 4, "2^2": 1},
        }
        assert quantile_from_histogram(hist, 0.5) == 0.25
        assert quantile_from_histogram(hist, 0.9) == 1.0
        assert quantile_from_histogram(hist, 0.99) == 4.0

    def test_empty_histogram_is_none(self):
        assert quantile_from_histogram({"count": 0}, 0.99) is None
        assert quantile_from_histogram({}, 0.99) is None

    def test_upper_bound_estimate_dominates_true_quantile(self):
        # The estimate is a bucket upper bound, so it can never
        # undershoot the true quantile of the recorded samples.
        hist = {
            "count": 4,
            "sum": 2.2,
            "min": 0.3,
            "max": 1.0,
            "buckets": {"2^-1": 2, "2^0": 2},
        }
        assert quantile_from_histogram(hist, 0.99) >= 1.0
