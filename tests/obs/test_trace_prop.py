"""Cross-process trace propagation: context, drain, merged Chrome lanes."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    Tracer,
    current_context,
    enable_tracing,
    merge_chrome_trace,
    validate_chrome_trace,
)


def _clock(cell):
    return lambda: cell[0]


class TestTraceContext:
    def test_root_span_mints_its_own_identity(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("root") as sp:
            assert sp.parent_id is None
            assert sp.trace_id == sp.span_id   # locally minted trace id

    def test_adopted_context_reparents_root_spans(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.trace_context(777, 42):
            with tracer.span("worker-root") as sp:
                assert sp.trace_id == 777
                assert sp.parent_id == 42
                # children chain normally under the adopted root
                with tracer.span("child") as child:
                    assert child.parent_id == sp.span_id
                    assert child.trace_id == 777

    def test_context_restores_on_exit(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.trace_context(1, 10):
            with tracer.trace_context(2, 20):
                with tracer.span("inner") as sp:
                    assert (sp.trace_id, sp.parent_id) == (2, 20)
            with tracer.span("outer") as sp:
                assert (sp.trace_id, sp.parent_id) == (1, 10)
        with tracer.span("detached") as sp:
            assert sp.trace_id == sp.span_id

    def test_current_context_tracks_innermost_open_span(self):
        tracer = enable_tracing(clock=lambda: 0.0)
        assert current_context() is None            # nothing open
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                ctx = current_context()
                assert ctx == {
                    "trace_id": b.trace_id,
                    "parent_span_id": b.span_id,
                }
            assert current_context()["parent_span_id"] == a.span_id
        assert current_context() is None

    def test_current_context_none_when_tracing_off(self):
        assert current_context() is None


class TestDrain:
    def test_drain_ships_each_span_exactly_once(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("one"):
            pass
        first = tracer.drain()
        assert [s["name"] for s in first] == ["one"]
        assert tracer.drain() == []
        with tracer.span("two"):
            pass
        assert [s["name"] for s in tracer.drain()] == ["two"]

    def test_drain_leaves_open_spans_alone(self):
        tracer = Tracer(clock=lambda: 0.0)
        sp = tracer.start("open")
        assert tracer.drain() == []
        tracer.finish(sp)
        assert len(tracer.drain()) == 1


class TestSpanIdBase:
    def test_bases_keep_ids_disjoint_across_processes(self):
        lanes = []
        for pid in (100, 200):
            tracer = Tracer(clock=lambda: 0.0, span_id_base=pid * 1_000_000)
            with tracer.span("work"):
                pass
            lanes.append(tracer.drain())
        ids = [s["span_id"] for lane in lanes for s in lane]
        assert len(ids) == len(set(ids))
        assert ids[0] == 100_000_001
        assert ids[1] == 200_000_001


class TestMergeChromeTrace:
    def _lane(self, pid, epoch, t0, t1, clock_cell):
        clock_cell[0] = epoch
        tracer = Tracer(
            clock=_clock(clock_cell), span_id_base=pid * 1_000_000
        )
        clock_cell[0] = t0
        sp = tracer.start("work", pid_hint=pid)
        clock_cell[0] = t1
        tracer.finish(sp)
        return {"pid": pid, **tracer.to_dict()}

    def test_merged_trace_is_valid_with_one_lane_per_pid(self):
        cell = [0.0]
        # Deliberately incomparable epochs: worker clocks were advance()d
        # differently, exactly the fleet situation.
        front = self._lane(1, 100.0, 100.5, 100.6, cell)
        w0 = self._lane(4001, 3.0, 3.25, 3.5, cell)
        w1 = self._lane(4002, 9000.0, 9000.1, 9000.2, cell)
        payload = merge_chrome_trace([w1, front, w0])
        assert validate_chrome_trace(payload) == 3
        events = payload["traceEvents"]
        assert [e["pid"] for e in events] == [1, 4001, 4002]   # sorted lanes
        by_pid = {e["pid"]: e for e in events}
        # ts is relative to each lane's OWN epoch
        assert by_pid[1]["ts"] == pytest.approx(0.5e6)
        assert by_pid[4001]["ts"] == pytest.approx(0.25e6)
        assert by_pid[4001]["dur"] == pytest.approx(0.25e6)
        assert by_pid[4002]["ts"] == pytest.approx(0.1e6)

    def test_extra_payload_rides_in_other_data(self):
        payload = merge_chrome_trace([], extra={"metrics": {"x": 1}})
        assert payload["otherData"] == {"metrics": {"x": 1}}
        assert validate_chrome_trace(payload) == 0

    def test_propagated_ids_survive_the_merge(self):
        cell = [0.0]
        front_tracer = Tracer(clock=_clock(cell))
        root = front_tracer.start("predict")
        ctx = {"trace_id": root.trace_id, "parent_span_id": root.span_id}
        worker = Tracer(clock=_clock(cell), span_id_base=9_000_000)
        with worker.trace_context(ctx["trace_id"], ctx["parent_span_id"]):
            with worker.span("worker.predict"):
                pass
        front_tracer.finish(root)
        payload = merge_chrome_trace(
            [
                {"pid": 1, **front_tracer.to_dict()},
                {"pid": 2, "epoch_s": 0.0, "spans": worker.drain()},
            ]
        )
        validate_chrome_trace(payload)
        events = {e["name"]: e for e in payload["traceEvents"]}
        assert (
            events["worker.predict"]["args"]["parent_id"]
            == events["predict"]["args"]["span_id"]
        )
