"""Span nesting, attributes, exporters, observers, and the pipeline clock."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    SpanObserver,
    Tracer,
    add_span_observer,
    enable_tracing,
    disable_tracing,
    get_tracer,
    span,
    validate_chrome_trace,
)
from repro.obs.trace import _NULL_SPAN, advance, monotonic


class FakeClock:
    """A deterministic clock the tests tick by hand."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestSpanBasics:
    def test_nesting_links_parent_ids(self):
        tracer = enable_tracing()
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # inner finishes first, outer second
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        enable_tracing()
        with span("root") as root:
            with span("a") as a:
                pass
            with span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_attrs_at_open_and_via_set(self):
        enable_tracing()
        with span("work", rows=10) as sp:
            sp.set(retries=2)
        assert sp.attrs == {"rows": 10, "retries": 2}

    def test_exception_recorded_and_propagated(self):
        tracer = enable_tracing()
        with pytest.raises(KeyError):
            with span("doomed"):
                raise KeyError("boom")
        (sp,) = tracer.spans()
        assert "KeyError" in sp.attrs["error"]
        assert sp.end_s is not None

    def test_ids_are_unique_and_increasing(self):
        tracer = enable_tracing()
        for i in range(5):
            with span(f"s{i}"):
                pass
        ids = [s.span_id for s in tracer.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


class TestDisabledMode:
    def test_span_returns_shared_null_singleton(self):
        assert get_tracer() is None
        assert span("anything") is _NULL_SPAN
        assert span("other", rows=1) is _NULL_SPAN

    def test_null_span_is_inert(self):
        with span("x") as sp:
            assert sp.set(a=1) is sp
        # exceptions still propagate through the null span
        with pytest.raises(ValueError):
            with span("y"):
                raise ValueError("pass through")

    def test_disable_returns_the_tracer(self):
        tracer = enable_tracing()
        with span("kept"):
            pass
        returned = disable_tracing()
        assert returned is tracer
        assert [s.name for s in returned.spans()] == ["kept"]
        assert get_tracer() is None


class TestDeterministicClock:
    def test_durations_follow_injected_clock(self):
        clock = FakeClock()
        tracer = enable_tracing(clock=clock)
        with tracer.span("timed"):
            clock.tick(2.5)
        (sp,) = tracer.spans()
        assert sp.duration_s == pytest.approx(2.5)

    def test_advance_flows_into_span_durations(self):
        tracer = enable_tracing()
        with span("stalled"):
            advance(7.0)
        (sp,) = tracer.spans()
        # no sleeping happened, yet the span saw >= 7 synthetic seconds
        assert sp.duration_s >= 7.0
        assert sp.duration_s < 8.0

    def test_monotonic_includes_offset_and_never_decreases(self):
        before = monotonic()
        advance(3.0)
        after = monotonic()
        assert after - before >= 3.0
        advance(-1.0)  # negative advances are ignored
        assert monotonic() >= after


class TestChromeExport:
    def _traced(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("explain"):
            with tracer.span("stage.fit", rung="full"):
                clock.tick(0.25)
            clock.tick(0.05)
        return tracer

    def test_event_schema(self):
        payload = self._traced().to_chrome_trace()
        assert validate_chrome_trace(payload) == 2
        assert payload["displayTimeUnit"] == "ms"
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["cat"] == "gef"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert "span_id" in event["args"]
            assert "parent_id" in event["args"]

    def test_timestamps_are_relative_microseconds(self):
        payload = self._traced().to_chrome_trace()
        fit = next(
            e for e in payload["traceEvents"] if e["name"] == "stage.fit"
        )
        assert fit["dur"] == pytest.approx(0.25e6)
        assert fit["args"]["rung"] == "full"

    def test_extra_payload_embedded(self):
        payload = self._traced().to_chrome_trace(extra={"metrics": {"a": 1}})
        assert payload["otherData"] == {"metrics": {"a": 1}}

    def test_write_produces_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().write(path, extra={"k": "v"})
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        assert payload["otherData"] == {"k": "v"}

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "B", "ts": 0, "dur": 0,
                     "pid": 1, "tid": 1}
                ]}
            )


class TestObservers:
    def test_start_and_end_callbacks_fire_in_order(self):
        events = []

        class Recorder(SpanObserver):
            def on_span_start(self, sp):
                events.append(("start", sp.name))

            def on_span_end(self, sp):
                events.append(("end", sp.name))

        add_span_observer(Recorder())
        enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        assert events == [
            ("start", "outer"),
            ("start", "inner"),
            ("end", "inner"),
            ("end", "outer"),
        ]

    def test_end_callback_sees_final_duration(self):
        durations = []

        class Probe(SpanObserver):
            def on_span_end(self, sp):
                durations.append(sp.duration_s)

        add_span_observer(Probe())
        clock = FakeClock()
        tracer = enable_tracing(clock=clock)
        with tracer.span("work"):
            clock.tick(1.5)
        assert durations == [pytest.approx(1.5)]
