"""Tests for GCV-based smoothing-parameter selection."""

import numpy as np
import pytest

from repro.gam import GAM, SplineTerm, default_lam_grid, gcv_gridsearch


@pytest.fixture(scope="module")
def wiggly_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (3000, 1))
    y = np.sin(12 * X[:, 0]) + rng.normal(0, 0.2, 3000)
    return X, y


class TestGcvSearch:
    def test_selects_from_grid(self, wiggly_data):
        X, y = wiggly_data
        gam = GAM([SplineTerm(0, 20)])
        grid = np.logspace(-3, 3, 7)
        gam.gridsearch(X, y, lam_grid=grid)
        assert gam.lam in grid

    def test_lam_path_recorded(self, wiggly_data):
        X, y = wiggly_data
        gam = GAM([SplineTerm(0, 20)])
        gam.gridsearch(X, y, lam_grid=np.logspace(-2, 2, 5))
        path = gam.statistics_["lam_path"]
        assert len(path) == 5
        best_gcv = min(g for _, g in path)
        assert gam.statistics_["GCV"] == pytest.approx(best_gcv, rel=1e-9)

    def test_fast_path_matches_direct_fit(self, wiggly_data):
        """The Gram-reuse identity path must equal an ordinary fit."""
        X, y = wiggly_data
        fast = GAM([SplineTerm(0, 14)])
        gcv_gridsearch(fast, X, y, lam_grid=np.array([0.5]))
        direct = GAM([SplineTerm(0, 14)], lam=0.5).fit(X, y)
        # Coefficients can differ in the weakly determined penalty null
        # space (tiny ridge); the fitted function must agree regardless.
        np.testing.assert_allclose(fast.predict(X), direct.predict(X), atol=1e-7)
        assert fast.statistics_["GCV"] == pytest.approx(
            direct.statistics_["GCV"], rel=1e-6
        )

    def test_gcv_avoids_extreme_smoothing(self, wiggly_data):
        """With real curvature, GCV should reject the most extreme lambda."""
        X, y = wiggly_data
        gam = GAM([SplineTerm(0, 20)])
        gam.gridsearch(X, y, lam_grid=np.logspace(-4, 6, 11))
        assert gam.lam < 1e6

    def test_selected_model_predicts_well(self, wiggly_data):
        X, y = wiggly_data
        gam = GAM([SplineTerm(0, 20)])
        gam.gridsearch(X, y)
        resid = y - gam.predict(X)
        assert np.std(resid) < 0.25

    def test_empty_grid_rejected(self, wiggly_data):
        X, y = wiggly_data
        with pytest.raises(ValueError):
            GAM([SplineTerm(0, 8)]).gridsearch(X, y, lam_grid=np.array([]))

    def test_negative_lambda_rejected(self, wiggly_data):
        X, y = wiggly_data
        with pytest.raises(ValueError):
            GAM([SplineTerm(0, 8)]).gridsearch(X, y, lam_grid=np.array([-1.0]))

    def test_default_grid_spans_orders_of_magnitude(self):
        grid = default_lam_grid()
        assert grid.min() <= 1e-3 and grid.max() >= 1e3

    def test_logit_gridsearch(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (1500, 1))
        p = 1 / (1 + np.exp(-(8 * X[:, 0] - 4)))
        y = (rng.uniform(size=1500) < p).astype(float)
        gam = GAM([SplineTerm(0, 8)], link="logit")
        gam.gridsearch(X, y, lam_grid=np.logspace(-1, 1, 3))
        assert len(gam.statistics_["lam_path"]) == 3
        assert np.mean(np.abs(gam.predict_mu(X) - p)) < 0.08
