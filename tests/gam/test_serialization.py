"""Tests for GAM serialization."""

import json

import numpy as np
import pytest

from repro.gam import (
    GAM,
    FactorTerm,
    LinearTerm,
    SplineTerm,
    TensorTerm,
    gam_from_dict,
    gam_to_dict,
    term_from_dict,
    term_to_dict,
)


@pytest.fixture(scope="module")
def fitted_gam():
    rng = np.random.default_rng(0)
    X = np.column_stack([
        rng.uniform(0, 1, 1500),
        rng.uniform(-2, 2, 1500),
        rng.choice([0.0, 1.0, 2.0], 1500),
        rng.uniform(0, 1, 1500),
    ])
    y = (
        np.sin(5 * X[:, 0])
        + 0.5 * X[:, 1]
        + np.array([0.0, 1.0, -1.0])[X[:, 2].astype(int)]
        + X[:, 0] * X[:, 3]
        + rng.normal(0, 0.05, 1500)
    )
    gam = GAM(
        [
            SplineTerm(0, 10),
            LinearTerm(1),
            FactorTerm(2),
            TensorTerm(0, 3, 5),
        ],
        lam=0.3,
    ).fit(X, y)
    return gam, X


class TestTermRoundTrip:
    @pytest.mark.parametrize("index", [0, 1, 2, 3, 4])
    def test_each_term_round_trips(self, fitted_gam, index):
        gam, X = fitted_gam
        term = gam.terms[index]
        clone = term_from_dict(term_to_dict(term))
        np.testing.assert_allclose(
            term.design(X[:50]), clone.design(X[:50]), atol=1e-14
        )
        assert clone.label == term.label
        assert clone.n_coefs == term.n_coefs

    def test_unfitted_term_rejected(self):
        with pytest.raises(RuntimeError):
            term_to_dict(SplineTerm(0))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            term_from_dict({"type": "wavelet"})


class TestGamRoundTrip:
    def test_predictions_identical(self, fitted_gam):
        gam, X = fitted_gam
        clone = gam_from_dict(gam_to_dict(gam))
        np.testing.assert_allclose(
            gam.predict(X[:200]), clone.predict(X[:200]), atol=1e-12
        )

    def test_partial_dependence_identical(self, fitted_gam):
        gam, X = fitted_gam
        clone = gam_from_dict(gam_to_dict(gam))
        grid = np.linspace(0, 1, 25)
        a, ci_a = gam.partial_dependence(1, grid, width=0.95)
        b, ci_b = clone.partial_dependence(1, grid, width=0.95)
        np.testing.assert_allclose(a, b, atol=1e-12)
        np.testing.assert_allclose(ci_a, ci_b, atol=1e-12)

    def test_json_safe(self, fitted_gam):
        gam, X = fitted_gam
        payload = json.dumps(gam_to_dict(gam))
        clone = gam_from_dict(json.loads(payload))
        np.testing.assert_allclose(
            gam.predict(X[:20]), clone.predict(X[:20]), atol=1e-12
        )

    def test_unfitted_gam_rejected(self):
        with pytest.raises(ValueError):
            gam_to_dict(GAM([SplineTerm(0)]))

    def test_logit_gam_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (1000, 1))
        y = (rng.uniform(size=1000) < X[:, 0]).astype(float)
        gam = GAM([SplineTerm(0, 8)], link="logit", lam=1.0).fit(X, y)
        clone = gam_from_dict(gam_to_dict(gam))
        assert clone.link.name == "logit"
        np.testing.assert_allclose(
            gam.predict_mu(X[:50]), clone.predict_mu(X[:50]), atol=1e-12
        )
