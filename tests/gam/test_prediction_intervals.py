"""Tests for GAM mean-prediction credible intervals."""

import numpy as np
import pytest

from repro.gam import GAM, SplineTerm


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (3000, 1))
    y = np.sin(6 * X[:, 0]) + rng.normal(0, 0.1, 3000)
    gam = GAM([SplineTerm(0, 12)], lam=0.5).fit(X, y)
    return gam, X, y


class TestPredictionIntervals:
    def test_shape_and_ordering(self, fitted):
        gam, X, _ = fitted
        intervals = gam.prediction_intervals(X[:50])
        assert intervals.shape == (50, 2)
        assert np.all(intervals[:, 0] <= intervals[:, 1])

    def test_contains_point_prediction(self, fitted):
        gam, X, _ = fitted
        pred = gam.predict(X[:50])
        intervals = gam.prediction_intervals(X[:50])
        assert np.all(intervals[:, 0] <= pred)
        assert np.all(pred <= intervals[:, 1])

    def test_wider_width_wider_intervals(self, fitted):
        gam, X, _ = fitted
        narrow = gam.prediction_intervals(X[:20], width=0.5)
        wide = gam.prediction_intervals(X[:20], width=0.99)
        assert np.all(
            (wide[:, 1] - wide[:, 0]) > (narrow[:, 1] - narrow[:, 0])
        )

    def test_covers_the_true_mean(self, fitted):
        """The 95% band should contain the noise-free mean almost always
        (intervals are for the mean, not for new observations)."""
        gam, _, _ = fitted
        grid = np.linspace(0.05, 0.95, 200)[:, None]
        truth = np.sin(6 * grid[:, 0])
        intervals = gam.prediction_intervals(grid, width=0.95)
        covered = np.mean(
            (intervals[:, 0] <= truth) & (truth <= intervals[:, 1])
        )
        assert covered > 0.8

    def test_logit_intervals_stay_in_unit_range(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (2000, 1))
        p = 1 / (1 + np.exp(-(6 * X[:, 0] - 3)))
        y = (rng.uniform(size=2000) < p).astype(float)
        gam = GAM([SplineTerm(0, 8)], link="logit", lam=1.0).fit(X, y)
        intervals = gam.prediction_intervals(X[:100])
        assert intervals.min() >= 0.0
        assert intervals.max() <= 1.0

    def test_width_validation(self, fitted):
        gam, X, _ = fitted
        with pytest.raises(ValueError):
            gam.prediction_intervals(X[:5], width=1.0)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            GAM([SplineTerm(0)]).prediction_intervals(np.zeros((2, 1)))
