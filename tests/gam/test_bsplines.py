"""Tests for the B-spline basis and difference penalties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gam import bspline_design, difference_penalty, uniform_knots


class TestUniformKnots:
    def test_count(self):
        knots = uniform_knots(0.0, 1.0, n_splines=10, degree=3)
        assert len(knots) == 10 + 3 + 1

    def test_evenly_spaced(self):
        knots = uniform_knots(0.0, 1.0, n_splines=8, degree=3)
        np.testing.assert_allclose(np.diff(knots), np.diff(knots)[0])

    def test_covers_domain(self):
        knots = uniform_knots(-2.0, 5.0, n_splines=6, degree=3)
        assert knots[3] == pytest.approx(-2.0)
        assert knots[-4] == pytest.approx(5.0)

    def test_too_few_splines(self):
        with pytest.raises(ValueError):
            uniform_knots(0.0, 1.0, n_splines=3, degree=3)

    def test_degenerate_domain_widened(self):
        knots = uniform_knots(1.0, 1.0, n_splines=5, degree=3)
        assert np.all(np.isfinite(knots))
        assert knots[-1] > knots[0]

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            uniform_knots(0.0, np.inf, n_splines=5)


class TestBsplineDesign:
    def test_shape(self):
        knots = uniform_knots(0.0, 1.0, 12, 3)
        basis = bspline_design(np.linspace(0, 1, 37), knots, 3)
        assert basis.shape == (37, 12)

    def test_partition_of_unity(self):
        knots = uniform_knots(0.0, 1.0, 10, 3)
        basis = bspline_design(np.linspace(0, 1, 101), knots, 3)
        np.testing.assert_allclose(basis.sum(axis=1), 1.0, atol=1e-10)

    def test_nonnegative(self):
        knots = uniform_knots(-3.0, 3.0, 8, 3)
        basis = bspline_design(np.linspace(-3, 3, 61), knots, 3)
        assert basis.min() >= -1e-12

    def test_local_support(self):
        """Each degree-3 basis function touches at most 4 knot intervals."""
        knots = uniform_knots(0.0, 1.0, 12, 3)
        basis = bspline_design(np.linspace(0, 1, 200), knots, 3)
        for j in range(12):
            support = np.nonzero(basis[:, j] > 1e-12)[0]
            if support.size:
                width = (support[-1] - support[0]) / 200
                assert width <= 4 / (12 - 3) + 0.02

    def test_clamping_gives_constant_extrapolation(self):
        knots = uniform_knots(0.0, 1.0, 8, 3)
        inside = bspline_design(np.array([0.0, 1.0 - 1e-9]), knots, 3)
        outside = bspline_design(np.array([-5.0, 42.0]), knots, 3)
        np.testing.assert_allclose(outside, inside, atol=1e-6)

    def test_degree_one_is_piecewise_linear(self):
        knots = uniform_knots(0.0, 1.0, 5, 1)
        x = np.linspace(0, 1, 11)
        basis = bspline_design(x, knots, 1)
        np.testing.assert_allclose(basis.sum(axis=1), 1.0, atol=1e-12)

    def test_knot_vector_too_short(self):
        with pytest.raises(ValueError):
            bspline_design(np.array([0.5]), np.array([0.0, 1.0]), 3)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_partition_of_unity_pointwise(self, x):
        knots = uniform_knots(0.0, 1.0, 9, 3)
        total = bspline_design(np.array([x]), knots, 3).sum()
        assert total == pytest.approx(1.0, abs=1e-10)

    @given(st.integers(4, 30), st.floats(-100, 100), st.floats(0.1, 100))
    @settings(max_examples=30, deadline=None)
    def test_partition_of_unity_any_domain(self, n_splines, lo, span):
        hi = lo + span
        knots = uniform_knots(lo, hi, n_splines, 3)
        x = np.linspace(lo, hi, 23)
        basis = bspline_design(x, knots, 3)
        np.testing.assert_allclose(basis.sum(axis=1), 1.0, atol=1e-8)


class TestDifferencePenalty:
    def test_shape_and_symmetry(self):
        p = difference_penalty(10, order=2)
        assert p.shape == (10, 10)
        np.testing.assert_allclose(p, p.T)

    def test_positive_semidefinite(self):
        p = difference_penalty(12, order=2)
        eigvals = np.linalg.eigvalsh(p)
        assert eigvals.min() > -1e-10

    def test_null_space_constant_and_linear(self):
        """2nd-order penalty must not penalize constant or linear coefs."""
        p = difference_penalty(8, order=2)
        const = np.ones(8)
        linear = np.arange(8.0)
        assert const @ p @ const == pytest.approx(0.0, abs=1e-12)
        assert linear @ p @ linear == pytest.approx(0.0, abs=1e-10)

    def test_penalizes_wiggle(self):
        p = difference_penalty(8, order=2)
        wiggly = np.array([1.0, -1.0] * 4)
        assert wiggly @ p @ wiggly > 1.0

    def test_first_order_null_space(self):
        p = difference_penalty(6, order=1)
        const = np.ones(6)
        assert const @ p @ const == pytest.approx(0.0, abs=1e-12)
        linear = np.arange(6.0)
        assert linear @ p @ linear > 0

    def test_small_matrices(self):
        np.testing.assert_array_equal(difference_penalty(1, 2), np.zeros((1, 1)))
        np.testing.assert_array_equal(difference_penalty(2, 2), np.zeros((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            difference_penalty(0)
        with pytest.raises(ValueError):
            difference_penalty(5, order=0)
