"""Tests for GAM fitting, prediction, PD curves and statistics."""

import numpy as np
import pytest

from repro.gam import GAM, FactorTerm, InterceptTerm, SplineTerm, TensorTerm


@pytest.fixture(scope="module")
def additive_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (4000, 2))
    y = 2.0 + np.sin(6 * X[:, 0]) + (X[:, 1] - 0.5) ** 2 * 4 + rng.normal(0, 0.05, 4000)
    return X, y


@pytest.fixture(scope="module")
def fitted_gam(additive_data):
    X, y = additive_data
    gam = GAM([SplineTerm(0, 12), SplineTerm(1, 12)], lam=0.1)
    gam.fit(X, y)
    return gam


class TestFitting:
    def test_high_accuracy_on_additive_target(self, additive_data, fitted_gam):
        X, y = additive_data
        resid = y - fitted_gam.predict(X)
        assert np.std(resid) < 0.07  # close to the noise floor (0.05)

    def test_intercept_prepended_automatically(self, fitted_gam):
        assert isinstance(fitted_gam.terms[0], InterceptTerm)
        assert len(fitted_gam.terms) == 3

    def test_intercept_near_target_mean(self, additive_data, fitted_gam):
        _, y = additive_data
        # Terms are centered, so the intercept absorbs the mean response.
        assert fitted_gam.intercept_ == pytest.approx(np.mean(y), abs=0.05)

    def test_statistics_populated(self, fitted_gam):
        stats = fitted_gam.statistics_
        assert 0 < stats["edof"] < fitted_gam.n_coefs
        assert stats["scale"] > 0
        assert stats["GCV"] > 0
        assert stats["cov"].shape == (fitted_gam.n_coefs,) * 2

    def test_shape_validation(self):
        gam = GAM([SplineTerm(0)])
        with pytest.raises(ValueError):
            gam.fit(np.zeros((5, 1)), np.zeros(4))

    def test_needs_terms(self):
        with pytest.raises(ValueError):
            GAM([])

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            GAM([SplineTerm(0)], lam=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GAM([SplineTerm(0)]).predict(np.zeros((2, 1)))

    def test_chunked_fit_matches_single_chunk(self, additive_data):
        X, y = additive_data
        small = GAM([SplineTerm(0, 8), SplineTerm(1, 8)], lam=1.0, chunk_size=100)
        big = GAM([SplineTerm(0, 8), SplineTerm(1, 8)], lam=1.0, chunk_size=10**6)
        small.fit(X, y)
        big.fit(X, y)
        # Chunked accumulation reorders floating-point sums; the fitted
        # function must agree even if null-space coefficients drift.
        np.testing.assert_allclose(small.predict(X), big.predict(X), atol=1e-7)


class TestSmoothing:
    def test_larger_lambda_smooths_more(self, additive_data):
        X, y = additive_data
        rough = GAM([SplineTerm(0, 16), SplineTerm(1, 16)], lam=1e-4).fit(X, y)
        smooth = GAM([SplineTerm(0, 16), SplineTerm(1, 16)], lam=1e4).fit(X, y)
        assert smooth.statistics_["edof"] < rough.statistics_["edof"]

    def test_huge_lambda_approaches_linear_fit(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (800, 1))
        y = 3 * X[:, 0] + rng.normal(0, 0.01, 800)
        gam = GAM([SplineTerm(0, 10)], lam=1e9).fit(X, y)
        # The 2nd-order penalty null space is linear, so a linear target
        # survives even infinite smoothing.
        resid = y - gam.predict(X)
        assert np.std(resid) < 0.05


class TestPartialDependence:
    def test_recovers_component_shape(self, additive_data, fitted_gam):
        grid = np.linspace(0.05, 0.95, 50)
        pd0 = fitted_gam.partial_dependence(1, grid)
        truth = np.sin(6 * grid)
        # Both are centered differently; compare after centering each.
        np.testing.assert_allclose(
            pd0 - pd0.mean(), truth - truth.mean(), atol=0.08
        )

    def test_intervals_contain_estimate(self, fitted_gam):
        grid = np.linspace(0, 1, 20)
        pd, ci = fitted_gam.partial_dependence(1, grid, width=0.95)
        assert np.all(ci[:, 0] <= pd) and np.all(pd <= ci[:, 1])

    def test_wider_width_wider_intervals(self, fitted_gam):
        grid = np.linspace(0, 1, 10)
        _, narrow = fitted_gam.partial_dependence(1, grid, width=0.5)
        _, wide = fitted_gam.partial_dependence(1, grid, width=0.99)
        assert np.all(wide[:, 1] - wide[:, 0] > narrow[:, 1] - narrow[:, 0])

    def test_intercept_pd_rejected(self, fitted_gam):
        with pytest.raises(ValueError):
            fitted_gam.partial_dependence(0, np.array([0.5]))

    def test_invalid_width(self, fitted_gam):
        with pytest.raises(ValueError):
            fitted_gam.partial_dependence(1, np.array([0.5]), width=1.5)

    def test_additivity(self, additive_data, fitted_gam):
        """eta(x) == intercept + sum of the terms' partial dependences."""
        X, _ = additive_data
        rows = X[:20]
        eta = fitted_gam.predict_eta(rows)
        total = np.full(20, fitted_gam.intercept_)
        for idx in (1, 2):
            total += fitted_gam.partial_dependence(idx, rows[:, idx - 1])
        np.testing.assert_allclose(eta, total, atol=1e-10)


class TestLogitGam:
    def test_logistic_recovery(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, (5000, 1))
        p_true = 1 / (1 + np.exp(-(6 * X[:, 0] - 3)))
        y = (rng.uniform(size=5000) < p_true).astype(float)
        gam = GAM([SplineTerm(0, 8)], link="logit", lam=1.0).fit(X, y)
        p_hat = gam.predict_mu(X)
        assert np.mean(np.abs(p_hat - p_true)) < 0.05

    def test_mu_in_unit_interval(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (500, 1))
        y = (X[:, 0] > 0.5).astype(float)
        gam = GAM([SplineTerm(0, 6)], link="logit", lam=0.1).fit(X, y)
        mu = gam.predict_mu(X)
        assert np.all((mu >= 0) & (mu <= 1))

    def test_binomial_scale_fixed(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 1, (300, 1))
        y = (rng.uniform(size=300) < 0.5).astype(float)
        gam = GAM([SplineTerm(0, 6)], link="logit").fit(X, y)
        assert gam.statistics_["scale"] == 1.0


class TestMixedTerms:
    def test_factor_plus_spline(self):
        rng = np.random.default_rng(5)
        X = np.column_stack(
            [rng.uniform(0, 1, 2000), rng.choice([0.0, 1.0, 2.0], 2000)]
        )
        effect = np.array([0.0, 1.0, -1.0])
        y = 2 * X[:, 0] + effect[X[:, 1].astype(int)] + rng.normal(0, 0.05, 2000)
        gam = GAM([SplineTerm(0, 8), FactorTerm(1)], lam=0.01).fit(X, y)
        pd_levels = gam.partial_dependence(2, np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(
            pd_levels - pd_levels.mean(), effect - effect.mean(), atol=0.05
        )

    def test_tensor_captures_interaction(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(0, 1, (3000, 2))
        y = X[:, 0] * X[:, 1] * 4 + rng.normal(0, 0.05, 3000)
        additive = GAM([SplineTerm(0, 8), SplineTerm(1, 8)], lam=0.1).fit(X, y)
        with_tensor = GAM(
            [SplineTerm(0, 8), SplineTerm(1, 8), TensorTerm(0, 1, 5)], lam=0.1
        ).fit(X, y)
        resid_add = np.std(y - additive.predict(X))
        resid_ten = np.std(y - with_tensor.predict(X))
        assert resid_ten < 0.6 * resid_add

    def test_summary_mentions_terms(self, fitted_gam):
        text = fitted_gam.summary()
        assert "s(x0)" in text and "s(x1)" in text and "GCV" in text

    def test_term_labels(self, fitted_gam):
        assert fitted_gam.term_labels() == ["intercept", "s(x0)", "s(x1)"]
