"""Tests for per-term smoothing parameters (the paper's lambda_j)."""

import numpy as np
import pytest

from repro.gam import GAM, SplineTerm


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (3000, 2))
    y = np.sin(10 * X[:, 0]) + np.sin(10 * X[:, 1]) + rng.normal(0, 0.05, 3000)
    return X, y


class TestPerTermLambda:
    def test_sequence_matching_given_terms(self, data):
        X, y = data
        gam = GAM([SplineTerm(0, 14), SplineTerm(1, 14)], lam=[0.1, 100.0])
        gam.fit(X, y)
        # Term 1 is heavily smoothed: its contribution must be flatter.
        grid = np.linspace(0, 1, 50)
        rough = gam.partial_dependence(1, grid)
        smooth = gam.partial_dependence(2, grid)
        assert np.std(smooth) < np.std(rough)

    def test_sequence_matching_final_terms(self, data):
        X, y = data
        gam = GAM([SplineTerm(0, 10), SplineTerm(1, 10)], lam=[0.0, 1.0, 1.0])
        gam.fit(X, y)
        assert gam.coef_ is not None

    def test_scalar_equivalent_to_uniform_sequence(self, data):
        X, y = data
        shared = GAM([SplineTerm(0, 10), SplineTerm(1, 10)], lam=0.5).fit(X, y)
        explicit = GAM([SplineTerm(0, 10), SplineTerm(1, 10)], lam=[0.5, 0.5]).fit(X, y)
        np.testing.assert_allclose(
            shared.predict(X[:50]), explicit.predict(X[:50]), atol=1e-8
        )

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            GAM([SplineTerm(0), SplineTerm(1)], lam=[0.1, 0.2, 0.3, 0.4])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GAM([SplineTerm(0)], lam=[-1.0])
        with pytest.raises(ValueError):
            GAM([SplineTerm(0)], lam=-1.0)

    def test_summary_renders_array_lam(self, data):
        X, y = data
        gam = GAM([SplineTerm(0, 10), SplineTerm(1, 10)], lam=[0.1, 10.0]).fit(X, y)
        assert "lam=" in gam.summary()

    def test_gridsearch_still_works_after_per_term(self, data):
        """gridsearch selects a shared scalar, overriding per-term lam."""
        X, y = data
        gam = GAM([SplineTerm(0, 10), SplineTerm(1, 10)], lam=[0.1, 10.0])
        gam.gridsearch(X, y, lam_grid=np.array([0.5, 5.0]))
        assert np.isscalar(gam.lam)
