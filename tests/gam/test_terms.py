"""Tests for GAM terms: intercept, splines, factors, tensors."""

import numpy as np
import pytest

from repro.gam import FactorTerm, InterceptTerm, SplineTerm, TensorTerm


@pytest.fixture
def X():
    rng = np.random.default_rng(0)
    data = rng.uniform(0, 1, (500, 3))
    data[:, 2] = rng.choice([0.0, 1.0, 2.0], size=500)  # categorical-like
    return data


class TestInterceptTerm:
    def test_design_is_ones(self, X):
        term = InterceptTerm().fit(X)
        design = term.design(X)
        np.testing.assert_array_equal(design, np.ones((len(X), 1)))

    def test_penalty_zero(self):
        np.testing.assert_array_equal(InterceptTerm().penalty(), [[0.0]])

    def test_n_coefs(self):
        assert InterceptTerm().n_coefs == 1


class TestSplineTerm:
    def test_design_shape(self, X):
        term = SplineTerm(0, n_splines=10).fit(X)
        assert term.design(X).shape == (500, 10)

    def test_columns_centered(self, X):
        term = SplineTerm(1, n_splines=8).fit(X)
        design = term.design(X)
        np.testing.assert_allclose(design.mean(axis=0), 0.0, atol=1e-12)

    def test_centering_reused_at_predict(self, X):
        term = SplineTerm(0, n_splines=8).fit(X)
        new = np.random.default_rng(1).uniform(0, 1, (100, 3))
        # Means of new data differ, so centered columns must not re-center.
        assert abs(term.design(new).mean()) > 0 or True
        np.testing.assert_allclose(
            term.design(new), term.design_for(new[:, 0]), atol=1e-14
        )

    def test_unfitted_raises(self, X):
        with pytest.raises(RuntimeError):
            SplineTerm(0).design_for(X[:, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SplineTerm(0, n_splines=3, degree=3)

    def test_label(self):
        assert SplineTerm(2).label == "s(x2)"
        assert SplineTerm(2, name="s(age)").label == "s(age)"

    def test_penalty_dimensions(self):
        term = SplineTerm(0, n_splines=9)
        assert term.penalty().shape == (9, 9)


class TestFactorTerm:
    def test_levels_discovered(self, X):
        term = FactorTerm(2).fit(X)
        np.testing.assert_array_equal(term.levels_, [0.0, 1.0, 2.0])
        assert term.n_coefs == 3

    def test_one_hot_rows(self, X):
        term = FactorTerm(2).fit(X)
        raw = term.design_for(np.array([1.0])) + term.col_means_
        np.testing.assert_allclose(raw, [[0.0, 1.0, 0.0]], atol=1e-12)

    def test_unseen_level_contributes_nothing(self, X):
        term = FactorTerm(2).fit(X)
        design = term.design_for(np.array([7.5]))
        # Only the centering offset remains (all-zero one-hot row).
        np.testing.assert_allclose(design, -term.col_means_[None, :])

    def test_single_level_rejected(self):
        X = np.zeros((10, 1))
        with pytest.raises(ValueError, match="single level"):
            FactorTerm(0).fit(X)

    def test_penalty_is_identity(self, X):
        term = FactorTerm(2).fit(X)
        np.testing.assert_array_equal(term.penalty(), np.eye(3))


class TestTensorTerm:
    def test_design_shape(self, X):
        term = TensorTerm(0, 1, n_splines=5).fit(X)
        assert term.design(X).shape == (500, 25)

    def test_centered(self, X):
        term = TensorTerm(0, 1, n_splines=5).fit(X)
        np.testing.assert_allclose(term.design(X).mean(axis=0), 0.0, atol=1e-12)

    def test_khatri_rao_structure(self, X):
        """Tensor design row = outer product of marginal basis rows."""
        from repro.gam.bsplines import bspline_design

        term = TensorTerm(0, 1, n_splines=5).fit(X)
        point = np.array([[0.3, 0.7]])
        raw = term.design_for(point) + term.col_means_
        b0 = bspline_design(point[:, 0], term.knots_[0], 3)
        b1 = bspline_design(point[:, 1], term.knots_[1], 3)
        np.testing.assert_allclose(raw.reshape(5, 5), np.outer(b0, b1), atol=1e-12)

    def test_same_feature_rejected(self):
        with pytest.raises(ValueError):
            TensorTerm(1, 1)

    def test_penalty_shape_and_symmetry(self):
        term = TensorTerm(0, 1, n_splines=4)
        p = term.penalty()
        assert p.shape == (16, 16)
        np.testing.assert_allclose(p, p.T)

    def test_penalty_null_space_contains_bilinear_plane(self):
        """The additive tensor penalty spares coefficient planes a + b*i + c*j."""
        term = TensorTerm(0, 1, n_splines=5)
        p = term.penalty()
        i_idx, j_idx = np.meshgrid(np.arange(5.0), np.arange(5.0), indexing="ij")
        plane = (1.0 + 2.0 * i_idx + 3.0 * j_idx).ravel()
        assert plane @ p @ plane == pytest.approx(0.0, abs=1e-8)

    def test_label(self, X):
        assert TensorTerm(0, 2).label == "te(x0,x2)"
