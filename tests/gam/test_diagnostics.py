"""Tests for GAM diagnostics."""

import numpy as np
import pytest

from repro.gam import GAM, SplineTerm, diagnose


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (3000, 2))
    y = 3 * X[:, 0] + 0.3 * np.sin(6 * X[:, 1]) + rng.normal(0, 0.05, 3000)
    gam = GAM([SplineTerm(0, 10), SplineTerm(1, 10)], lam=0.1).fit(X, y)
    return gam, X, y


class TestDiagnose:
    def test_deviance_explained_high_for_good_fit(self, fitted):
        gam, X, y = fitted
        d = diagnose(gam, X, y)
        assert d.deviance_explained > 0.95

    def test_variance_shares_sum_to_one(self, fitted):
        gam, X, y = fitted
        d = diagnose(gam, X, y)
        assert sum(d.term_variance_share.values()) == pytest.approx(1.0)

    def test_dominant_term_identified(self, fitted):
        gam, X, y = fitted
        d = diagnose(gam, X, y)
        # 3*x0 dwarfs 0.3*sin(6 x1).
        assert d.term_variance_share["s(x0)"] > d.term_variance_share["s(x1)"]

    def test_residual_quantiles_ordered(self, fitted):
        gam, X, y = fitted
        q = diagnose(gam, X, y).residual_quantiles
        assert q["min"] <= q["q25"] <= q["median"] <= q["q75"] <= q["max"]

    def test_summary_text(self, fitted):
        gam, X, y = fitted
        text = diagnose(gam, X, y).summary()
        assert "deviance explained" in text
        assert "s(x0)" in text

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            diagnose(GAM([SplineTerm(0)]), np.zeros((2, 1)), np.zeros(2))

    def test_length_mismatch(self, fitted):
        gam, X, y = fitted
        with pytest.raises(ValueError):
            diagnose(gam, X, y[:-1])

    def test_null_model_zero_explained(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (800, 1))
        y = rng.normal(size=800)  # pure noise
        gam = GAM([SplineTerm(0, 8)], lam=1e6).fit(X, y)
        d = diagnose(gam, X, y)
        assert abs(d.deviance_explained) < 0.05
