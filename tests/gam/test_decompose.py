"""Tests for the batch per-term decomposition."""

import numpy as np
import pytest

from repro.gam import GAM, SplineTerm, TensorTerm


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (2000, 2))
    y = 2 * X[:, 0] + np.sin(5 * X[:, 1]) + X[:, 0] * X[:, 1] + rng.normal(0, 0.05, 2000)
    gam = GAM(
        [SplineTerm(0, 10), SplineTerm(1, 10), TensorTerm(0, 1, 5)], lam=0.1
    ).fit(X, y)
    return gam, X


class TestDecompose:
    def test_terms_sum_to_eta(self, fitted):
        gam, X = fitted
        parts = gam.decompose(X[:100])
        total = np.sum(list(parts.values()), axis=0)
        np.testing.assert_allclose(total, gam.predict_eta(X[:100]), atol=1e-10)

    def test_all_labels_present(self, fitted):
        gam, X = fitted
        parts = gam.decompose(X[:5])
        assert set(parts) == {"intercept", "s(x0)", "s(x1)", "te(x0,x1)"}

    def test_intercept_is_constant(self, fitted):
        gam, X = fitted
        intercept = gam.decompose(X[:50])["intercept"]
        np.testing.assert_allclose(intercept, intercept[0])

    def test_matches_partial_dependence(self, fitted):
        gam, X = fitted
        parts = gam.decompose(X[:30])
        pd = gam.partial_dependence(1, X[:30, 0])
        np.testing.assert_allclose(parts["s(x0)"], pd, atol=1e-12)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            GAM([SplineTerm(0)]).decompose(np.zeros((2, 1)))
