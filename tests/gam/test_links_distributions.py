"""Tests for link functions and response distributions."""

import numpy as np
import pytest

from repro.gam import (
    BinomialDistribution,
    IdentityLink,
    LogitLink,
    NormalDistribution,
    get_distribution,
    get_link,
)


class TestIdentityLink:
    def test_round_trip(self):
        link = IdentityLink()
        mu = np.linspace(-5, 5, 11)
        np.testing.assert_array_equal(link.inverse(link.link(mu)), mu)

    def test_derivative(self):
        np.testing.assert_array_equal(
            IdentityLink().derivative(np.array([1.0, 2.0])), [1.0, 1.0]
        )


class TestLogitLink:
    def test_round_trip(self):
        link = LogitLink()
        mu = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(link.inverse(link.link(mu)), mu, atol=1e-10)

    def test_inverse_stable_at_extremes(self):
        out = LogitLink().inverse(np.array([-1e4, 1e4]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_link_clips_boundaries(self):
        out = LogitLink().link(np.array([0.0, 1.0]))
        assert np.all(np.isfinite(out))

    def test_derivative_matches_numeric(self):
        link = LogitLink()
        mu = np.array([0.2, 0.5, 0.8])
        eps = 1e-7
        numeric = (link.link(mu + eps) - link.link(mu - eps)) / (2 * eps)
        np.testing.assert_allclose(link.derivative(mu), numeric, rtol=1e-4)


class TestDistributions:
    def test_normal_deviance_is_rss(self):
        y = np.array([1.0, 2.0, 3.0])
        mu = np.array([1.0, 1.0, 1.0])
        assert NormalDistribution().deviance(y, mu) == pytest.approx(5.0)

    def test_normal_variance_constant(self):
        np.testing.assert_array_equal(
            NormalDistribution().variance(np.array([0.1, 10.0])), [1.0, 1.0]
        )

    def test_binomial_variance_peak_at_half(self):
        v = BinomialDistribution().variance(np.array([0.1, 0.5, 0.9]))
        assert v[1] == pytest.approx(0.25)
        assert v[1] > v[0] and v[1] > v[2]

    def test_binomial_deviance_zero_for_perfect_fit(self):
        y = np.array([0.0, 1.0, 1.0])
        dev = BinomialDistribution().deviance(y, y)
        assert dev == pytest.approx(0.0, abs=1e-6)

    def test_binomial_deviance_positive_for_misfit(self):
        y = np.array([0.0, 1.0])
        mu = np.array([0.9, 0.1])
        assert BinomialDistribution().deviance(y, mu) > 1.0

    def test_binomial_deviance_handles_boundary_mu(self):
        y = np.array([1.0, 0.0])
        mu = np.array([1.0, 0.0])
        assert np.isfinite(BinomialDistribution().deviance(y, mu))


class TestRegistries:
    def test_link_lookup(self):
        assert isinstance(get_link("identity"), IdentityLink)
        assert isinstance(get_link("logit"), LogitLink)
        with pytest.raises(ValueError):
            get_link("probit")

    def test_distribution_lookup(self):
        assert isinstance(get_distribution("normal"), NormalDistribution)
        assert isinstance(get_distribution("binomial"), BinomialDistribution)
        with pytest.raises(ValueError):
            get_distribution("poisson")
