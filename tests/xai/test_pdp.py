"""Tests for partial dependence and ICE."""

import numpy as np
import pytest

from repro.xai import (
    ice_curves,
    partial_dependence_1d,
    partial_dependence_2d,
    pd_at_points,
)


def additive_model(X):
    """f(x) = 2 x0 + sin(3 x1): no interactions by construction."""
    return 2 * X[:, 0] + np.sin(3 * X[:, 1])


def interactive_model(X):
    """f(x) = x0 * x1: pure interaction."""
    return X[:, 0] * X[:, 1]


@pytest.fixture(scope="module")
def background():
    return np.random.default_rng(0).uniform(0, 1, (200, 3))


class TestPartialDependence1d:
    def test_recovers_additive_component(self, background):
        grid = np.linspace(0, 1, 21)
        pd = partial_dependence_1d(additive_model, background, 0, grid)
        # PD of an additive model is the component plus a constant.
        np.testing.assert_allclose(np.diff(pd), 2 * np.diff(grid), atol=1e-10)

    def test_centered_mean_zero(self, background):
        grid = np.linspace(0, 1, 15)
        pd = partial_dependence_1d(additive_model, background, 1, grid, center=True)
        assert pd.mean() == pytest.approx(0.0, abs=1e-12)

    def test_irrelevant_feature_flat(self, background):
        grid = np.linspace(0, 1, 9)
        pd = partial_dependence_1d(additive_model, background, 2, grid)
        np.testing.assert_allclose(pd, pd[0], atol=1e-12)

    def test_empty_background_rejected(self):
        with pytest.raises(ValueError):
            partial_dependence_1d(additive_model, np.empty((0, 3)), 0, np.array([0.5]))


class TestPartialDependence2d:
    def test_surface_shape(self, background):
        surface = partial_dependence_2d(
            interactive_model,
            background,
            0,
            1,
            np.linspace(0, 1, 5),
            np.linspace(0, 1, 7),
        )
        assert surface.shape == (5, 7)

    def test_product_model_surface(self, background):
        gi = np.linspace(0, 1, 6)
        gj = np.linspace(0, 1, 6)
        surface = partial_dependence_2d(interactive_model, background, 0, 1, gi, gj)
        np.testing.assert_allclose(surface, np.outer(gi, gj), atol=1e-10)


class TestPdAtPoints:
    def test_matches_grid_evaluation(self, background):
        grid = np.linspace(0.1, 0.9, 8)
        via_grid = partial_dependence_1d(additive_model, background, 0, grid, center=True)
        via_points = pd_at_points(
            additive_model, background, (0,), grid[:, None], center=True
        )
        np.testing.assert_allclose(via_grid, via_points, atol=1e-12)

    def test_pairwise_points(self, background):
        points = np.array([[0.2, 0.3], [0.8, 0.1]])
        out = pd_at_points(
            interactive_model, background, (0, 1), points, center=False
        )
        np.testing.assert_allclose(out, points[:, 0] * points[:, 1], atol=1e-12)

    def test_width_mismatch_rejected(self, background):
        with pytest.raises(ValueError):
            pd_at_points(additive_model, background, (0, 1), np.zeros((3, 1)))

    def test_chunking_consistency(self, background):
        """Results must not depend on the internal batch size."""
        import repro.xai.pdp as pdp_module

        points = np.random.default_rng(1).uniform(0, 1, (50, 1))
        full = pd_at_points(additive_model, background, (0,), points)
        original = pdp_module._MAX_BATCH_ROWS
        try:
            pdp_module._MAX_BATCH_ROWS = 250  # forces many small chunks
            chunked = pd_at_points(additive_model, background, (0,), points)
        finally:
            pdp_module._MAX_BATCH_ROWS = original
        np.testing.assert_allclose(full, chunked, atol=1e-12)


class TestIceCurves:
    def test_shape(self, background):
        grid = np.linspace(0, 1, 11)
        curves = ice_curves(additive_model, background, 0, grid)
        assert curves.shape == (200, 11)

    def test_mean_of_ice_is_pd(self, background):
        grid = np.linspace(0, 1, 11)
        curves = ice_curves(additive_model, background, 0, grid)
        pd = partial_dependence_1d(additive_model, background, 0, grid)
        np.testing.assert_allclose(curves.mean(axis=0), pd, atol=1e-12)

    def test_additive_model_parallel_curves(self, background):
        grid = np.linspace(0, 1, 11)
        curves = ice_curves(additive_model, background, 0, grid)
        shifted = curves - curves[:, :1]
        np.testing.assert_allclose(
            shifted, np.broadcast_to(shifted[0], shifted.shape), atol=1e-10
        )
