"""Tests for SHAP global aggregation."""

import numpy as np
import pytest

from repro.forest import GradientBoostingRegressor
from repro.xai import ShapGlobalExplainer


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (600, 3))
    y = 4 * X[:, 0] + np.sin(6 * X[:, 1]) + rng.normal(0, 0.05, 600)
    forest = GradientBoostingRegressor(n_estimators=25, num_leaves=8, random_state=0)
    forest.fit(X, y)
    explainer = ShapGlobalExplainer(forest)
    return forest, X, explainer.explain(X[:80])


class TestAggregation:
    def test_shapes(self, setup):
        _, _, explanation = setup
        assert explanation.shap_values.shape == (80, 3)
        assert explanation.X.shape == (80, 3)

    def test_importance_ranks_signal_features(self, setup):
        _, _, explanation = setup
        ranking = explanation.ranking()
        assert set(ranking[:2].tolist()) == {0, 1}
        assert ranking[-1] == 2  # the noise feature

    def test_importance_is_mean_abs(self, setup):
        _, _, explanation = setup
        np.testing.assert_allclose(
            explanation.importance(),
            np.abs(explanation.shap_values).mean(axis=0),
        )

    def test_dependence_returns_copies(self, setup):
        _, _, explanation = setup
        x, phi = explanation.dependence(0)
        x[:] = 0.0
        assert explanation.X[:, 0].max() > 0  # original untouched

    def test_dependence_trend_monotone_for_linear_effect(self, setup):
        _, _, explanation = setup
        centers, means = explanation.dependence_trend(0, n_bins=8)
        # 4*x0 is linear: the binned SHAP trend must rise monotonically.
        assert np.all(np.diff(means) > 0)
        assert len(centers) == len(means)

    def test_dependence_trend_bin_validation(self, setup):
        _, _, explanation = setup
        with pytest.raises(ValueError):
            explanation.dependence_trend(0, n_bins=1)

    def test_local_accuracy_aggregates(self, setup):
        forest, X, explanation = setup
        reconstructed = explanation.expected_value + explanation.shap_values.sum(axis=1)
        np.testing.assert_allclose(reconstructed, forest.predict(X[:80]), atol=1e-8)

    def test_labels(self, setup):
        forest, X, _ = setup
        named = ShapGlobalExplainer(forest, feature_names=["a", "b", "c"]).explain(X[:5])
        assert named.label(1) == "b"

    def test_feature_names_validated(self, setup):
        forest, _, _ = setup
        with pytest.raises(ValueError):
            ShapGlobalExplainer(forest, feature_names=["only-one"])
