"""Tests for exact path-dependent TreeSHAP."""

from itertools import combinations
from math import factorial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import GradientBoostingRegressor, RandomForestRegressor
from repro.xai import TreeShapExplainer, expected_tree_value, tree_shap_values


def conditional_expectation(tree, x, subset):
    """Path-dependent E[f(x) | features in subset] via cover-weighted walk."""

    def recurse(node):
        if tree.is_leaf(node):
            return tree.value[node]
        f = tree.feature[node]
        if f in subset:
            child = tree.left[node] if x[f] <= tree.threshold[node] else tree.right[node]
            return recurse(int(child))
        wl = tree.n_samples[tree.left[node]]
        wr = tree.n_samples[tree.right[node]]
        total = wl + wr
        return (
            wl * recurse(int(tree.left[node]))
            + wr * recurse(int(tree.right[node]))
        ) / total

    return recurse(0)


def brute_force_shap(tree, x, n_features):
    """Textbook Shapley values over the conditional-expectation game."""
    phi = np.zeros(n_features)
    for i in range(n_features):
        others = [f for f in range(n_features) if f != i]
        for size in range(len(others) + 1):
            for subset in combinations(others, size):
                weight = (
                    factorial(len(subset))
                    * factorial(n_features - len(subset) - 1)
                    / factorial(n_features)
                )
                with_i = conditional_expectation(tree, x, set(subset) | {i})
                without_i = conditional_expectation(tree, x, set(subset))
                phi[i] += weight * (with_i - without_i)
    return phi


@pytest.fixture(scope="module")
def shap_setup():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (600, 4))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + np.sin(4 * X[:, 3]) + rng.normal(0, 0.05, 600)
    forest = GradientBoostingRegressor(
        n_estimators=12, num_leaves=8, min_samples_leaf=5, random_state=0
    )
    forest.fit(X, y)
    return forest, X


class TestExactness:
    def test_matches_brute_force(self, shap_setup):
        forest, X = shap_setup
        explainer = TreeShapExplainer(forest)
        for row in (0, 17, 99):
            fast = explainer.shap_values(X[row][None, :])[0]
            brute = sum(brute_force_shap(t, X[row], 4) for t in forest.trees_)
            np.testing.assert_allclose(fast, brute, atol=1e-10)

    def test_single_tree_matches_brute_force(self, shap_setup):
        forest, X = shap_setup
        tree = forest.trees_[0]
        fast = tree_shap_values(tree, X[3], 4)
        np.testing.assert_allclose(fast, brute_force_shap(tree, X[3], 4), atol=1e-10)


class TestLocalAccuracy:
    def test_sum_equals_prediction_minus_base(self, shap_setup):
        forest, X = shap_setup
        explainer = TreeShapExplainer(forest)
        rows = X[:25]
        phi = explainer.shap_values(rows)
        preds = forest.predict(rows)
        np.testing.assert_allclose(
            explainer.expected_value + phi.sum(axis=1), preds, atol=1e-9
        )

    @given(st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_local_accuracy_anywhere(self, coords):
        # hypothesis doesn't combine with fixtures; rebuild a small forest.
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (300, 4))
        y = X[:, 0] - X[:, 2]
        forest = GradientBoostingRegressor(n_estimators=4, num_leaves=4, random_state=0)
        forest.fit(X, y)
        explainer = TreeShapExplainer(forest)
        x = np.asarray(coords)
        phi = explainer.shap_values(x[None, :])[0]
        assert explainer.expected_value + phi.sum() == pytest.approx(
            forest.predict(x[None, :])[0], abs=1e-8
        )


class TestStructuralProperties:
    def test_unused_feature_gets_zero(self, shap_setup):
        forest, X = shap_setup
        explainer = TreeShapExplainer(forest)
        padded = np.column_stack([X[:5], np.ones(5)])
        forest_padded = GradientBoostingRegressor(n_estimators=3, random_state=0)
        rng = np.random.default_rng(2)
        Xp = np.column_stack([X, rng.uniform(0, 1, len(X))])
        # Retrain with a pure-noise feature that carries no signal: any
        # residual attribution should be tiny relative to the real features.
        yp = 3 * X[:, 0]
        forest_padded.fit(Xp, yp)
        phi = TreeShapExplainer(forest_padded).shap_values(Xp[:20])
        assert np.abs(phi[:, 4]).max() < 0.25 * np.abs(phi[:, 0]).max()

    def test_expected_value_is_cover_weighted_mean(self, shap_setup):
        forest, X = shap_setup
        explainer = TreeShapExplainer(forest)
        # The cover-weighted mean equals the training-set mean prediction
        # because covers are the actual training routing counts.
        train_mean = forest.predict(X).mean()
        assert explainer.expected_value == pytest.approx(train_mean, abs=0.05)

    def test_works_on_random_forest(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (400, 3))
        y = X[:, 0] * 2
        rf = RandomForestRegressor(n_estimators=5, max_features="all", random_state=0)
        rf.fit(X, y)
        explainer = TreeShapExplainer(rf)
        phi = explainer.shap_values(X[:10])
        np.testing.assert_allclose(
            explainer.expected_value + phi.sum(axis=1),
            rf.predict(X[:10]),
            atol=1e-9,
        )

    def test_explain_dict(self, shap_setup):
        forest, X = shap_setup
        result = TreeShapExplainer(forest).explain(X[0])
        assert result["prediction"] == pytest.approx(
            forest.predict(X[0][None, :])[0], abs=1e-9
        )
        assert len(result["ranking"]) == 4
        # Ranking is by decreasing |phi|.
        mags = np.abs(result["shap_values"])[result["ranking"]]
        assert np.all(np.diff(mags) <= 1e-12)


class TestValidation:
    def test_unfitted_forest_rejected(self):
        with pytest.raises(ValueError):
            TreeShapExplainer(GradientBoostingRegressor())

    def test_wrong_width_rejected(self, shap_setup):
        forest, _ = shap_setup
        explainer = TreeShapExplainer(forest)
        with pytest.raises(ValueError):
            explainer.shap_values(np.zeros((2, 7)))

    def test_expected_tree_value_stump(self):
        from tests.forest.test_tree import make_stump

        tree = make_stump(left_value=-1.0, right_value=1.0)
        # 6 of 10 samples go left.
        assert expected_tree_value(tree) == pytest.approx(-0.2)


def make_repeated_feature_tree():
    """x0 splits the root AND the left-left subtree: descending the cold
    side of the root carries a zero one-fraction for x0 down the path, so
    re-encountering x0 exercises the exact ``one == 0.0`` unwind branch."""
    from repro.forest.tree import LEAF, Tree

    return Tree(
        feature=np.array([0, 1, LEAF, 0, LEAF, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.5, 0.5, 0.0, 0.25, 0.0, 0.0, 0.0]),
        left=np.array([1, 3, -1, 5, -1, -1, -1], dtype=np.int32),
        right=np.array([2, 4, -1, 6, -1, -1, -1], dtype=np.int32),
        value=np.array([0.0, 0.0, 5.0, 0.0, 1.0, 2.0, 3.0]),
        gain=np.array([4.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
        n_samples=np.array([16, 10, 6, 7, 3, 4, 3], dtype=np.int64),
    )


class TestFloatSentinelRegressions:
    """Pinned behavior of the exact float comparisons waived in
    ``src/repro/xai/treeshap.py`` (``# repro: allow(float-eq)``)."""

    @pytest.mark.parametrize(
        "x",
        [
            np.array([0.1, 0.1]),
            np.array([0.1, 0.9]),
            np.array([0.4, 0.1]),
            np.array([0.9, 0.9]),
        ],
    )
    def test_zero_cover_branch(self, x):
        """The zero one-fraction unwind branch still yields exact Shapley
        values (matches the brute-force conditional-expectation game)."""
        tree = make_repeated_feature_tree()
        phi = tree_shap_values(tree, x, 2)
        expected = brute_force_shap(tree, x, 2)
        np.testing.assert_allclose(phi, expected, atol=1e-12)
        total = phi.sum() + expected_tree_value(tree)
        np.testing.assert_allclose(
            total, conditional_expectation(tree, x, {0, 1}), atol=1e-12
        )

    def test_conditioned_zero_fraction(self):
        """The ``condition_fraction == 0.0`` dead-path prune keeps the
        interaction matrix consistent: symmetric, rows summing to the
        SHAP values, total equal to f(x) - E[f]."""
        from repro.xai import tree_shap_interaction_values

        tree = make_repeated_feature_tree()
        x = np.array([0.3, 0.2])
        inter = tree_shap_interaction_values(tree, x, 2)
        phi = tree_shap_values(tree, x, 2)
        np.testing.assert_allclose(inter, inter.T, atol=1e-12)
        np.testing.assert_allclose(inter.sum(axis=1), phi, atol=1e-12)
        np.testing.assert_allclose(
            inter.sum(),
            conditional_expectation(tree, x, {0, 1}) - expected_tree_value(tree),
            atol=1e-12,
        )
