"""Tests for the LIME tabular explainer."""

import numpy as np
import pytest

from repro.xai import LimeTabularExplainer


@pytest.fixture(scope="module")
def training_data():
    return np.random.default_rng(0).uniform(-1, 1, (500, 3))


class TestLinearRecovery:
    def test_recovers_linear_coefficients(self, training_data):
        """On a linear model LIME's standardized coefs = beta * scale."""

        def linear(X):
            return 3.0 * X[:, 0] - 1.0 * X[:, 1]

        explainer = LimeTabularExplainer(training_data, random_state=0)
        x = np.array([0.2, -0.3, 0.5])
        exp = explainer.explain_instance(x, linear, num_samples=4000)
        coef = np.zeros(3)
        coef[exp.feature_indices] = exp.coefficients
        expected = np.array([3.0, -1.0, 0.0]) * explainer.scales_
        np.testing.assert_allclose(coef, expected, atol=0.05)

    def test_ranking_by_magnitude(self, training_data):
        def model(X):
            return 5 * X[:, 2] + 0.5 * X[:, 0]

        explainer = LimeTabularExplainer(training_data, random_state=0)
        exp = explainer.explain_instance(np.zeros(3), model)
        assert exp.feature_indices[0] == 2

    def test_local_prediction_close_to_model(self, training_data):
        def model(X):
            return X[:, 0] ** 2 + X[:, 1]

        explainer = LimeTabularExplainer(training_data, random_state=0)
        x = np.array([0.5, 0.2, 0.0])
        exp = explainer.explain_instance(x, model)
        assert exp.local_prediction == pytest.approx(exp.model_prediction, abs=0.3)

    def test_score_high_for_linear(self, training_data):
        explainer = LimeTabularExplainer(training_data, random_state=0)
        exp = explainer.explain_instance(np.zeros(3), lambda X: X[:, 0])
        assert exp.score > 0.95

    def test_as_list_top_k(self, training_data):
        explainer = LimeTabularExplainer(training_data, random_state=0)
        exp = explainer.explain_instance(np.zeros(3), lambda X: X[:, 0])
        pairs = exp.as_list(top_k=2)
        assert len(pairs) == 2
        assert pairs[0][0] == 0

    def test_num_features_truncates(self, training_data):
        explainer = LimeTabularExplainer(training_data, random_state=0)
        exp = explainer.explain_instance(
            np.zeros(3), lambda X: X[:, 0], num_features=1
        )
        assert len(exp.feature_indices) == 1


class TestDeterminismAndValidation:
    def test_deterministic_given_seed(self, training_data):
        def model(X):
            return np.sin(X[:, 0])

        runs = []
        for _ in range(2):
            explainer = LimeTabularExplainer(training_data, random_state=7)
            runs.append(
                explainer.explain_instance(np.zeros(3), model).coefficients
            )
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_kernel_width_validation(self, training_data):
        with pytest.raises(ValueError):
            LimeTabularExplainer(training_data, kernel_width=0.0)

    def test_tiny_training_data_rejected(self):
        with pytest.raises(ValueError):
            LimeTabularExplainer(np.zeros((1, 3)))

    def test_wrong_instance_width(self, training_data):
        explainer = LimeTabularExplainer(training_data)
        with pytest.raises(ValueError):
            explainer.explain_instance(np.zeros(5), lambda X: X[:, 0])

    def test_min_samples(self, training_data):
        explainer = LimeTabularExplainer(training_data)
        with pytest.raises(ValueError):
            explainer.explain_instance(np.zeros(3), lambda X: X[:, 0], num_samples=5)

    def test_constant_feature_scale_fallback(self):
        data = np.column_stack(
            [np.random.default_rng(0).normal(size=100), np.full(100, 2.0)]
        )
        explainer = LimeTabularExplainer(data)
        assert explainer.scales_[1] == 1.0  # no division by zero


class TestWeightedR2Sentinel:
    """Pinned behavior of the exact degenerate-SST comparison waived in
    ``LimeTabularExplainer._weighted_r2`` (``# repro: allow(float-eq)``)."""

    def test_weighted_r2_constant_target(self):
        w = np.ones(4)
        y = np.full(4, 2.0)
        # Perfect fit of a constant target scores 1, any miss scores 0 —
        # never a 0/0 NaN.
        assert LimeTabularExplainer._weighted_r2(y, y.copy(), w) == 1.0
        assert LimeTabularExplainer._weighted_r2(y, y + 0.5, w) == 0.0
        varied = np.array([1.0, 2.0, 3.0, 4.0])
        assert LimeTabularExplainer._weighted_r2(varied, varied.copy(), w) == 1.0
