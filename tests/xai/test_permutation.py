"""Tests for permutation feature importance."""

import numpy as np
import pytest

from repro.metrics import r2_score
from repro.xai import permutation_importance


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (800, 4))
    y = 4 * X[:, 0] + np.sin(6 * X[:, 2]) + rng.normal(0, 0.02, 800)
    return X, y


class TestPermutationImportance:
    def test_signal_features_dominate(self, setup):
        X, y = setup
        model = lambda A: 4 * A[:, 0] + np.sin(6 * A[:, 2])
        imp = permutation_importance(model, X, y, r2_score, random_state=0)
        assert imp[0] > imp[1] and imp[0] > imp[3]
        assert imp[2] > imp[1] and imp[2] > imp[3]

    def test_noise_features_near_zero(self, setup):
        X, y = setup
        model = lambda A: 4 * A[:, 0] + np.sin(6 * A[:, 2])
        imp = permutation_importance(model, X, y, r2_score, random_state=0)
        assert abs(imp[1]) < 0.01
        assert abs(imp[3]) < 0.01

    def test_agrees_with_forest_gain_ranking(self, setup):
        """Permutation and gain importances rank the same features on top."""
        from repro.forest import GradientBoostingRegressor

        X, y = setup
        forest = GradientBoostingRegressor(n_estimators=30, random_state=0)
        forest.fit(X, y)
        perm = permutation_importance(
            forest.predict, X, y, r2_score, random_state=0
        )
        gain = forest.feature_importance("gain")
        assert set(np.argsort(-perm)[:2]) == set(np.argsort(-gain)[:2]) == {0, 2}

    def test_input_left_unmodified(self, setup):
        X, y = setup
        before = X.copy()
        permutation_importance(lambda A: A[:, 0], X, y, r2_score, random_state=0)
        np.testing.assert_array_equal(X, before)

    def test_deterministic_given_seed(self, setup):
        X, y = setup
        model = lambda A: A[:, 0]
        a = permutation_importance(model, X, y, r2_score, random_state=3)
        b = permutation_importance(model, X, y, r2_score, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_validation(self, setup):
        X, y = setup
        with pytest.raises(ValueError):
            permutation_importance(lambda A: A[:, 0], X, y[:-1], r2_score)
        with pytest.raises(ValueError):
            permutation_importance(
                lambda A: A[:, 0], X, y, r2_score, n_repeats=0
            )


class TestStagedPredict:
    def test_stages_converge_to_final(self, setup):
        from repro.forest import GradientBoostingRegressor

        X, y = setup
        forest = GradientBoostingRegressor(n_estimators=12, random_state=0)
        forest.fit(X, y)
        stages = list(forest.staged_predict_raw(X[:50]))
        assert len(stages) == 12
        np.testing.assert_allclose(stages[-1], forest.predict_raw(X[:50]))

    def test_stages_improve_monotonically(self, setup):
        from repro.forest import GradientBoostingRegressor

        X, y = setup
        forest = GradientBoostingRegressor(n_estimators=15, random_state=0)
        forest.fit(X, y)
        errors = [
            float(np.mean((y[:200] - stage) ** 2))
            for stage in forest.staged_predict_raw(X[:200])
        ]
        assert errors[-1] < errors[0]
