"""Tests for the Friedman-Popescu H-statistic."""

import numpy as np
import pytest

from repro.xai import h_statistic, h_statistic_matrix


def additive_model(X):
    return 2 * X[:, 0] + np.sin(3 * X[:, 1]) + X[:, 2]


def interactive_model(X):
    return X[:, 0] * X[:, 1] * 3 + X[:, 2]


@pytest.fixture(scope="module")
def sample():
    return np.random.default_rng(0).uniform(0, 1, (60, 3))


class TestHStatistic:
    def test_additive_pair_near_zero(self, sample):
        h = h_statistic(additive_model, sample, 0, 1)
        assert h == pytest.approx(0.0, abs=1e-10)

    def test_interactive_pair_large(self, sample):
        h = h_statistic(interactive_model, sample, 0, 1)
        assert h > 0.1

    def test_ranks_true_interaction_first(self, sample):
        scores = h_statistic_matrix(interactive_model, sample, [0, 1, 2])
        best = max(scores, key=scores.get)
        assert best == (0, 1)

    def test_matrix_covers_all_pairs(self, sample):
        scores = h_statistic_matrix(additive_model, sample, [0, 1, 2])
        assert set(scores) == {(0, 1), (0, 2), (1, 2)}

    def test_matrix_matches_single_computation(self, sample):
        matrix = h_statistic_matrix(interactive_model, sample, [0, 1])
        single = h_statistic(interactive_model, sample, 0, 1)
        assert matrix[(0, 1)] == pytest.approx(single, rel=1e-9)

    def test_constant_model_zero(self, sample):
        h = h_statistic(lambda X: np.zeros(len(X)), sample, 0, 1)
        assert h == 0.0

    def test_separate_background(self, sample):
        background = sample[:20]
        h = h_statistic(interactive_model, sample, 0, 1, background=background)
        assert h > 0.05

    def test_too_small_sample_rejected(self):
        from repro.core import h_stat_scores
        from repro.forest import GradientBoostingRegressor

        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (100, 2))
        forest = GradientBoostingRegressor(n_estimators=2, random_state=0)
        forest.fit(X, X[:, 0])
        with pytest.raises(ValueError):
            h_stat_scores(forest, [0, 1], X[:1])
