"""Tests for the linear and single-tree baseline surrogates."""

import numpy as np
import pytest

from repro.xai import LinearSurrogate, TreeSurrogate


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, (1000, 3))
    y = 2.0 * X[:, 0] - 0.5 * X[:, 2] + 1.0 + rng.normal(0, 0.01, 1000)
    return X, y


class TestLinearSurrogate:
    def test_recovers_coefficients(self, linear_data):
        X, y = linear_data
        model = LinearSurrogate().fit(X, y)
        np.testing.assert_allclose(model.coef_, [2.0, 0.0, -0.5], atol=0.01)
        assert model.intercept_ == pytest.approx(1.0, abs=0.01)

    def test_prediction(self, linear_data):
        X, y = linear_data
        model = LinearSurrogate().fit(X, y)
        resid = y - model.predict(X)
        assert np.std(resid) < 0.02

    def test_explanation_sorted_by_importance(self, linear_data):
        X, y = linear_data
        model = LinearSurrogate().fit(X, y)
        names = [name for name, _ in model.explanation()]
        assert names[0] == "x0"  # strongest standardized weight first
        assert names[-1] == "x1"

    def test_explanation_with_names(self, linear_data):
        X, y = linear_data
        model = LinearSurrogate().fit(X, y)
        pairs = model.explanation(feature_names=["a", "b", "c"])
        assert pairs[0][0] == "a"

    def test_cannot_fit_sine(self):
        """The paper's §3.1 point: a linear surrogate cannot bend."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (2000, 1))
        y = np.sin(20 * X[:, 0])
        model = LinearSurrogate().fit(X, y)
        resid_var = np.var(y - model.predict(X))
        assert resid_var > 0.8 * np.var(y)  # barely better than the mean

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(100), np.arange(100.0)])
        y = X[:, 1] * 2
        model = LinearSurrogate().fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSurrogate(ridge=-1.0)
        with pytest.raises(ValueError):
            LinearSurrogate().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(RuntimeError):
            LinearSurrogate().predict(np.zeros((2, 2)))


class TestTreeSurrogate:
    def test_fits_step_function_exactly(self):
        # 200 distinct values < 255 bins, so every midpoint is a candidate
        # boundary and the histogram tree can match the step exactly.
        X = np.linspace(0, 1, 200)[:, None]
        y = np.where(X[:, 0] < 0.5, -1.0, 1.0)
        model = TreeSurrogate(num_leaves=2, min_samples_leaf=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-12)
        assert model.n_leaves == 2

    def test_leaf_budget_respected(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, (800, 3))
        y = X.sum(axis=1)
        model = TreeSurrogate(num_leaves=8, min_samples_leaf=5).fit(X, y)
        assert model.n_leaves <= 8

    def test_smooth_targets_are_hard(self):
        """Axis-aligned steps approximate a sine poorly at a small budget."""
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (2000, 1))
        y = np.sin(20 * X[:, 0])
        model = TreeSurrogate(num_leaves=4, min_samples_leaf=10).fit(X, y)
        resid_var = np.var(y - model.predict(X))
        assert resid_var > 0.2 * np.var(y)

    def test_explanation_is_rule_text(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        model = TreeSurrogate(num_leaves=2, min_samples_leaf=1).fit(X, y)
        text = model.explanation(feature_names=["age"])
        assert "age <=" in text
        assert "leaf:" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeSurrogate().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(RuntimeError):
            TreeSurrogate().predict(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            TreeSurrogate().explanation()
