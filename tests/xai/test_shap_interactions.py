"""Tests for exact SHAP interaction values."""

from itertools import combinations
from math import factorial

import numpy as np
import pytest

from repro.forest import GradientBoostingRegressor
from repro.xai import TreeShapExplainer, tree_shap_interaction_values

from tests.xai.test_treeshap import conditional_expectation


def brute_force_interactions(tree, x, n_features):
    """Textbook Shapley interaction index over the conditional game."""
    phi_int = np.zeros((n_features, n_features))
    features = list(range(n_features))
    for i, j in combinations(features, 2):
        others = [f for f in features if f not in (i, j)]
        total = 0.0
        for size in range(len(others) + 1):
            for subset in combinations(others, size):
                weight = (
                    factorial(len(subset))
                    * factorial(n_features - len(subset) - 2)
                    / (2.0 * factorial(n_features - 1))
                )
                s = set(subset)
                delta = (
                    conditional_expectation(tree, x, s | {i, j})
                    - conditional_expectation(tree, x, s | {i})
                    - conditional_expectation(tree, x, s | {j})
                    + conditional_expectation(tree, x, s)
                )
                total += weight * delta
        phi_int[i, j] = phi_int[j, i] = total
    return phi_int


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (500, 3))
    y = 2 * X[:, 0] + 3 * X[:, 1] * X[:, 2] + rng.normal(0, 0.02, 500)
    forest = GradientBoostingRegressor(
        n_estimators=8, num_leaves=8, min_samples_leaf=5, random_state=0
    )
    forest.fit(X, y)
    return forest, X


class TestExactness:
    def test_off_diagonal_matches_brute_force(self, setup):
        forest, X = setup
        for row in (0, 11):
            x = X[row]
            fast = sum(
                tree_shap_interaction_values(t, x, 3) for t in forest.trees_
            )
            brute = sum(
                brute_force_interactions(t, x, 3) for t in forest.trees_
            )
            off_diag = ~np.eye(3, dtype=bool)
            np.testing.assert_allclose(
                fast[off_diag], brute[off_diag], atol=1e-10
            )

    def test_symmetry(self, setup):
        forest, X = setup
        explainer = TreeShapExplainer(forest)
        matrices = explainer.shap_interaction_values(X[:5])
        for matrix in matrices:
            np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)

    def test_rows_sum_to_shap_values(self, setup):
        forest, X = setup
        explainer = TreeShapExplainer(forest)
        matrices = explainer.shap_interaction_values(X[:5])
        phi = explainer.shap_values(X[:5])
        np.testing.assert_allclose(matrices.sum(axis=2), phi, atol=1e-10)

    def test_total_sums_to_prediction_gap(self, setup):
        forest, X = setup
        explainer = TreeShapExplainer(forest)
        matrices = explainer.shap_interaction_values(X[:10])
        totals = matrices.sum(axis=(1, 2))
        expected = forest.predict(X[:10]) - explainer.expected_value
        np.testing.assert_allclose(totals, expected, atol=1e-9)


class TestSemantics:
    def test_interacting_pair_dominates(self, setup):
        """The x1*x2 product must carry the largest off-diagonal mass."""
        forest, X = setup
        explainer = TreeShapExplainer(forest)
        matrices = explainer.shap_interaction_values(X[:40])
        mean_abs = np.abs(matrices).mean(axis=0)
        off_pairs = {(0, 1), (0, 2), (1, 2)}
        strongest = max(off_pairs, key=lambda p: mean_abs[p])
        assert strongest == (1, 2)

    def test_additive_feature_has_weaker_interactions(self, setup):
        """x0 enters additively: its off-diagonal terms stay well below the
        true pair's (a small 8-tree forest leaves some spurious coupling,
        so the separation is strong but not absolute)."""
        forest, X = setup
        explainer = TreeShapExplainer(forest)
        matrices = explainer.shap_interaction_values(X[:40])
        mean_abs = np.abs(matrices).mean(axis=0)
        assert mean_abs[0, 1] < 0.5 * mean_abs[1, 2]
        assert mean_abs[0, 2] < 0.5 * mean_abs[1, 2]

    def test_unused_feature_all_zero(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, (300, 3))
        y = X[:, 0] * 2  # features 1, 2 unused
        forest = GradientBoostingRegressor(
            n_estimators=3, num_leaves=4, random_state=0
        )
        forest.fit(X, y)
        matrix = TreeShapExplainer(forest).shap_interaction_values(X[:1])[0]
        assert matrix[1].sum() == 0.0
        assert matrix[2].sum() == 0.0

    def test_width_validation(self, setup):
        forest, _ = setup
        with pytest.raises(ValueError):
            TreeShapExplainer(forest).shap_interaction_values(np.zeros((2, 7)))
