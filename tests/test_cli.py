"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.forest import save_forest


@pytest.fixture(scope="module")
def model_path(small_forest, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.json"
    save_forest(small_forest, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--out", "x.json"])

    def test_unknown_strategy_rejected(self, model_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["explain", str(model_path), "--strategy", "halton"]
            )


class TestTrain:
    def test_train_d_prime(self, tmp_path, capsys):
        out = tmp_path / "trained.json"
        code = main([
            "train", "--dataset", "d-prime", "--out", str(out),
            "--trees", "10", "--seed", "0",
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "test R2" in captured

    def test_train_census_classifier(self, tmp_path, capsys):
        out = tmp_path / "census.json"
        code = main([
            "train", "--dataset", "census", "--out", str(out),
            "--trees", "5", "--seed", "0",
        ])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out


class TestInspect:
    def test_summary_printed(self, model_path, capsys):
        assert main(["inspect", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "40 trees" in out
        assert "per-feature splits" in out


class TestExplain:
    def test_report_to_stdout(self, model_path, capsys):
        code = main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "2000", "--k", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GEF EXPLANATION REPORT" in out

    def test_report_to_file_with_instance(self, model_path, tmp_path, capsys):
        report_path = tmp_path / "report.txt"
        code = main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "2000", "--k", "40",
            "--instance", "0.5,0.5,0.5,0.5,0.5",
            "--report", str(report_path),
        ])
        assert code == 0
        text = report_path.read_text()
        assert "LOCAL EXPLANATION" in text
        assert "fidelity" in capsys.readouterr().out

    def test_wrong_instance_width_is_an_error(self, model_path, capsys):
        code = main([
            "explain", str(model_path),
            "--samples", "2000", "--instance", "0.5,0.5",
        ])
        assert code == 2
        assert "expects 5" in capsys.readouterr().err

    def test_save_then_report_round_trip(self, model_path, tmp_path, capsys):
        archive = tmp_path / "explanation.json"
        code = main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "2000", "--k", "40",
            "--save", str(archive), "--report", str(tmp_path / "r.txt"),
        ])
        assert code == 0
        assert archive.exists()
        capsys.readouterr()
        code = main([
            "report", str(archive), "--instance", "0.5,0.5,0.5,0.5,0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GEF EXPLANATION REPORT" in out
        assert "LOCAL EXPLANATION" in out


class TestErrorHandling:
    """Pipeline failures exit 1 with a one-line `error [<stage>]` message."""

    @pytest.fixture()
    def corrupted_model_path(self, small_forest, tmp_path):
        from repro.devtools import corrupt_forest

        path = tmp_path / "corrupted.json"
        save_forest(corrupt_forest(small_forest, "nan-threshold"), path)
        return path

    def test_corrupted_forest_exits_one(self, corrupted_model_path, capsys):
        code = main([
            "explain", str(corrupted_model_path),
            "--splines", "3", "--samples", "500",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "error [validate]:" in captured.err
        assert captured.err.count("\n") == 1  # one line, no traceback
        assert "Traceback" not in captured.err

    def test_strict_flag_parses_and_runs(self, model_path, capsys):
        code = main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "500", "--strict",
        ])
        assert code == 0
        assert "GEF explanation" in capsys.readouterr().out

    def test_strict_failure_is_one_line(self, model_path, capsys, monkeypatch):
        from repro.core.errors import SamplingError

        def boom(*args, **kwargs):
            raise SamplingError("injected", stage="sample")

        monkeypatch.setattr("repro.core.explainer.generate_dataset", boom)
        code = main([
            "explain", str(model_path),
            "--splines", "3", "--samples", "500", "--strict",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "error [sample]: injected" in captured.err
