"""Shared fixtures: small, deterministic models reused across test modules.

Everything expensive is session-scoped so the suite stays fast on one core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.numerics import set_numerics_mode
from repro.datasets import make_d_double_prime, make_d_prime
from repro.forest import GradientBoostingClassifier, GradientBoostingRegressor

# The whole suite runs with the numerics sanitizer armed: non-finite
# values or broken post-conditions inside the hot kernels fail loudly
# instead of surfacing as mysteriously bad fidelity numbers.
set_numerics_mode("strict")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def d_prime_small():
    """A reduced D' (2,500 rows) for fast end-to-end tests."""
    return make_d_prime(n=2_500, seed=7)


@pytest.fixture(scope="session")
def d_double_prime_small():
    """A reduced D'' with the paper's fixed interaction triple."""
    return make_d_double_prime([(0, 1), (0, 4), (1, 4)], n=2_500, seed=7)


@pytest.fixture(scope="session")
def small_forest(d_prime_small):
    """A 40-tree GBDT on the reduced D' (regression)."""
    model = GradientBoostingRegressor(
        n_estimators=40, num_leaves=16, learning_rate=0.15, random_state=0
    )
    model.fit(d_prime_small.X_train, d_prime_small.y_train)
    return model


@pytest.fixture(scope="session")
def interaction_forest(d_double_prime_small):
    """A 60-tree GBDT on the reduced D'' (has real interactions)."""
    model = GradientBoostingRegressor(
        n_estimators=60, num_leaves=24, learning_rate=0.12, random_state=0
    )
    model.fit(d_double_prime_small.X_train, d_double_prime_small.y_train)
    return model


@pytest.fixture(scope="session")
def classification_data(rng):
    """A separable binary task with five features."""
    local = np.random.default_rng(99)
    X = local.uniform(0, 1, (2_000, 5))
    logits = 6.0 * (X[:, 0] + np.sin(6 * X[:, 1]) - 0.8)
    y = (local.uniform(size=2_000) < 1 / (1 + np.exp(-logits))).astype(float)
    return X, y


@pytest.fixture(scope="session")
def small_classifier(classification_data):
    """A 40-tree GBDT classifier."""
    X, y = classification_data
    model = GradientBoostingClassifier(
        n_estimators=40, num_leaves=16, learning_rate=0.2, random_state=0
    )
    model.fit(X, y)
    return model
