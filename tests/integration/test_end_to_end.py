"""Cross-module integration tests: full pipelines exercised end to end."""

import numpy as np
import pytest

from repro.core import GEF, compare_with_shap, explanation_report
from repro.datasets import load_census, load_superconductivity
from repro.forest import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestRegressor,
    load_forest,
    save_forest,
)
from repro.metrics import accuracy, r2_score, roc_auc
from repro.xai import LimeTabularExplainer, ShapGlobalExplainer, TreeShapExplainer


class TestHandoffScenario:
    """Owner trains -> JSON on disk -> auditor explains, no shared state."""

    def test_round_trip_explanation_identical(
        self, small_forest, d_prime_small, tmp_path
    ):
        path = tmp_path / "model.json"
        save_forest(small_forest, path)
        loaded = load_forest(path)

        cfg = dict(n_univariate=3, n_samples=3000, k_points=40, random_state=0)
        from_original = GEF(**cfg).explain(small_forest)
        from_file = GEF(**cfg).explain(loaded)

        X = d_prime_small.X_test[:200]
        np.testing.assert_allclose(
            from_original.predict(X), from_file.predict(X), atol=1e-10
        )

    def test_report_from_loaded_forest(self, small_forest, tmp_path):
        path = tmp_path / "model.json"
        save_forest(small_forest, path)
        explanation = GEF(
            n_univariate=3, n_samples=2000, random_state=0
        ).explain(load_forest(path))
        report = explanation_report(explanation, instance=np.full(5, 0.5))
        assert "GEF EXPLANATION REPORT" in report
        assert "LOCAL EXPLANATION" in report


class TestSuperconductivityPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        data = load_superconductivity(n=3000, seed=0)
        forest = GradientBoostingRegressor(
            n_estimators=40, num_leaves=24, learning_rate=0.2, random_state=0
        )
        forest.fit(data.X_train, data.y_train)
        return data, forest

    def test_forest_quality(self, setup):
        data, forest = setup
        assert r2_score(data.y_test, forest.predict(data.X_test)) > 0.85

    def test_gef_selects_true_drivers(self, setup):
        data, forest = setup
        explanation = GEF(
            n_univariate=5, n_samples=5000, n_splines=10, random_state=0
        ).explain(forest, feature_names=data.feature_names)
        weam = data.feature_index("wtd_entropy_atomic_mass")
        assert weam in explanation.features

    def test_weam_jump_visible_in_spline(self, setup):
        data, forest = setup
        explanation = GEF(
            n_univariate=3,
            n_samples=8000,
            sampling_strategy="equi-width",
            k_points=200,
            n_splines=12,
            random_state=0,
        ).explain(forest, feature_names=data.feature_names)
        weam = data.feature_index("wtd_entropy_atomic_mass")
        term_index = next(
            i for i, t in enumerate(explanation.gam.terms)
            if t.features == (weam,)
        )
        grid = np.linspace(0.6, 1.6, 60)
        pd = explanation.gam.partial_dependence(term_index, grid)
        # Contribution above the jump is much higher than below it.
        assert pd[grid > 1.3].mean() > pd[grid < 0.9].mean() + 10.0


class TestCensusPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        data = load_census(n=4000, seed=0)
        forest = GradientBoostingClassifier(
            n_estimators=40, num_leaves=16, learning_rate=0.2, random_state=0
        )
        forest.fit(data.X_train, data.y_train)
        return data, forest

    def test_forest_quality(self, setup):
        data, forest = setup
        auc = roc_auc(data.y_test, forest.predict_proba(data.X_test))
        assert auc > 0.8
        assert accuracy(data.y_test, forest.predict(data.X_test)) > 0.75

    def test_probability_surrogate_tracks_forest(self, setup):
        data, forest = setup
        explanation = GEF(
            n_univariate=6,
            n_samples=6000,
            sampling_strategy="k-quantile",
            k_points=100,
            n_splines=8,
            random_state=0,
        ).explain(forest, feature_names=data.feature_names)
        X = data.X_test[:500]
        gap = np.abs(explanation.predict(X) - forest.predict_proba(X))
        # A 6-component additive surrogate of a 51-feature forest: mean
        # probability gap close to one decile is the expected fidelity.
        assert np.mean(gap) < 0.12

    def test_one_hot_features_become_factor_terms(self, setup):
        data, forest = setup
        explanation = GEF(
            n_univariate=8, n_samples=3000, random_state=0
        ).explain(forest, feature_names=data.feature_names)
        from repro.gam import FactorTerm

        one_hot = {
            i for i, name in enumerate(data.feature_names) if "=" in name
        }
        for idx, term in enumerate(explanation.gam.terms):
            if term.features and term.features[0] in one_hot:
                assert isinstance(term, FactorTerm)


class TestExplainerAgreement:
    """GEF, SHAP and LIME must tell one consistent story about one forest."""

    def test_three_way_consistency(self, small_forest, d_prime_small):
        explanation = GEF(
            n_univariate=5,
            sampling_strategy="all-thresholds",
            n_samples=6000,
            n_splines=14,
            random_state=0,
        ).explain(small_forest)
        X = d_prime_small.X_test[:60]

        shap_global = ShapGlobalExplainer(small_forest).explain(X)
        consistency = compare_with_shap(explanation, shap_global)
        assert consistency.mean_correlation() > 0.7

        # LIME on one instance: its top feature should carry a large
        # GEF contribution too.
        lime = LimeTabularExplainer(d_prime_small.X_train, random_state=0)
        x = X[0]
        lime_exp = lime.explain_instance(x, small_forest.predict)
        local = explanation.local_explanation(x)
        gef_top_features = {c.features[0] for c in local.contributions[:3]}
        assert int(lime_exp.feature_indices[0]) in gef_top_features


class TestRandomForestPipeline:
    def test_rf_end_to_end(self, d_prime_small):
        forest = RandomForestRegressor(
            n_estimators=15,
            num_leaves=64,
            min_samples_leaf=10,
            max_features="all",
            random_state=0,
        )
        forest.fit(d_prime_small.X_train, d_prime_small.y_train)
        explanation = GEF(
            n_univariate=5,
            sampling_strategy="equi-width",
            k_points=150,
            n_samples=8000,
            n_splines=14,
            random_state=0,
        ).explain(forest)
        X = d_prime_small.X_test
        fidelity = r2_score(forest.predict(X), explanation.predict(X))
        assert fidelity > 0.85

    def test_treeshap_on_rf_local_accuracy(self, d_prime_small):
        forest = RandomForestRegressor(
            n_estimators=8, num_leaves=32, max_features="all", random_state=0
        )
        forest.fit(d_prime_small.X_train, d_prime_small.y_train)
        explainer = TreeShapExplainer(forest)
        X = d_prime_small.X_test[:20]
        phi = explainer.shap_values(X)
        np.testing.assert_allclose(
            explainer.expected_value + phi.sum(axis=1),
            forest.predict(X),
            atol=1e-9,
        )
