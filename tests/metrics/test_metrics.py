"""Tests for evaluation metrics and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    average_precision,
    gaussian_kde_1d,
    mae,
    precision_at_k,
    r2_score,
    rmse,
    welch_ttest,
)


class TestRegressionMetrics:
    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_zero_for_perfect(self):
        y = np.arange(10.0)
        assert rmse(y, y) == 0.0

    def test_mae_known_value(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_r2_perfect_fit(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([10.0, -10.0, 10.0])) < 0

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 3.0]) == -np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_rmse_at_least_mae(self, values):
        """RMSE >= MAE for any error vector (power-mean inequality)."""
        y = np.asarray(values)
        pred = np.zeros_like(y)
        assert rmse(y, pred) >= mae(y, pred) - 1e-12


class TestAveragePrecision:
    def test_perfect_ranking(self):
        rel = np.array([True, True, False, False])
        scores = np.array([4.0, 3.0, 2.0, 1.0])
        assert average_precision(rel, scores) == pytest.approx(1.0)

    def test_worst_ranking(self):
        rel = np.array([True, False, False])
        scores = np.array([1.0, 3.0, 2.0])
        assert average_precision(rel, scores) == pytest.approx(1.0 / 3.0)

    def test_known_mixed_case(self):
        # Ranked: rel, non, rel -> AP = (1/1 + 2/3) / 2.
        rel = np.array([True, False, True])
        scores = np.array([3.0, 2.0, 1.0])
        assert average_precision(rel, scores) == pytest.approx((1.0 + 2.0 / 3.0) / 2)

    def test_no_relevant_items_rejected(self):
        with pytest.raises(ValueError):
            average_precision(np.array([False, False]), np.array([1.0, 2.0]))

    def test_precision_at_k(self):
        rel = np.array([True, False, True, False])
        scores = np.array([4.0, 3.0, 2.0, 1.0])
        assert precision_at_k(rel, scores, 1) == 1.0
        assert precision_at_k(rel, scores, 2) == 0.5
        with pytest.raises(ValueError):
            precision_at_k(rel, scores, 0)

    @given(
        st.lists(st.booleans(), min_size=2, max_size=30).filter(any),
    )
    @settings(max_examples=40, deadline=None)
    def test_ap_bounded(self, relevance):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=len(relevance))
        ap = average_precision(np.asarray(relevance), scores)
        n_rel = sum(relevance)
        n = len(relevance)
        # Tight bounds: worst case puts all relevant items last.
        worst = sum(i / (n - n_rel + i) for i in range(1, n_rel + 1)) / n_rel
        assert worst - 1e-9 <= ap <= 1.0 + 1e-9


class TestWelch:
    def test_identical_samples_not_significant(self):
        a = np.arange(20.0)
        result = welch_ttest(a, a.copy())
        assert result.p_value > 0.9
        assert not result.significant()

    def test_clearly_different_samples(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 50)
        b = rng.normal(5, 1, 50)
        result = welch_ttest(a, b)
        assert result.p_value < 1e-6
        assert result.significant()

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 30)
        b = rng.normal(0.5, 2, 40)
        r_ab = welch_ttest(a, b)
        r_ba = welch_ttest(b, a)
        assert r_ab.p_value == pytest.approx(r_ba.p_value)
        assert r_ab.statistic == pytest.approx(-r_ba.statistic)

    def test_matches_scipy(self):
        from scipy import stats as sps

        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 25)
        b = rng.normal(0.3, 1.5, 35)
        ours = welch_ttest(a, b)
        ref = sps.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue)

    def test_welch_identical_constant_samples(self):
        result = welch_ttest(np.ones(5), np.ones(5))
        assert result.p_value == 1.0

    def test_too_small(self):
        with pytest.raises(ValueError):
            welch_ttest(np.array([1.0]), np.array([1.0, 2.0]))


class TestKde:
    def test_integrates_to_one(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=500)
        grid = np.linspace(-6, 6, 1000)
        dens = gaussian_kde_1d(samples, grid)
        integral = np.trapezoid(dens, grid)
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_peak_near_mode(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(3.0, 0.5, 400)
        grid = np.linspace(0, 6, 200)
        dens = gaussian_kde_1d(samples, grid)
        assert abs(grid[np.argmax(dens)] - 3.0) < 0.5

    def test_custom_bandwidth(self):
        samples = np.array([0.0, 1.0])
        grid = np.array([0.5])
        wide = gaussian_kde_1d(samples, grid, bandwidth=10.0)
        narrow = gaussian_kde_1d(samples, grid, bandwidth=0.01)
        assert wide[0] < narrow[0] or narrow[0] == pytest.approx(0, abs=1e-6)

    def test_kde_constant_samples(self):
        """Constant samples (zero std) fall back to unit bandwidth instead
        of dividing by zero — the exact-zero sentinel waived in
        ``gaussian_kde_1d`` (``# repro: allow(float-eq)``)."""
        samples = np.full(50, 3.0)
        grid = np.linspace(0.0, 6.0, 101)
        dens = gaussian_kde_1d(samples, grid)
        assert np.all(np.isfinite(dens))
        assert grid[np.argmax(dens)] == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_kde_1d(np.array([]), np.array([0.0]))
        with pytest.raises(ValueError):
            gaussian_kde_1d(np.array([1.0]), np.array([0.0]), bandwidth=-1.0)
