"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.metrics import accuracy, log_loss, roc_auc


class TestAccuracy:
    def test_known_value(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.75)

    def test_perfect(self):
        y = np.array([0, 1, 1])
        assert accuracy(y, y) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])
        with pytest.raises(ValueError):
            accuracy([], [])


class TestLogLoss:
    def test_perfect_predictions_near_zero(self):
        y = np.array([0.0, 1.0])
        assert log_loss(y, np.array([1e-13, 1 - 1e-13])) < 1e-10

    def test_uninformative_is_log2(self):
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert log_loss(y, np.full(4, 0.5)) == pytest.approx(np.log(2))

    def test_confident_mistake_penalized(self):
        bad = log_loss(np.array([1.0]), np.array([0.01]))
        mild = log_loss(np.array([1.0]), np.array([0.4]))
        assert bad > mild

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            log_loss(np.array([0.0, 2.0]), np.array([0.5, 0.5]))


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1], dtype=float)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(y, scores) == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1], dtype=float)
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = (rng.uniform(size=2000) < 0.5).astype(float)
        scores = rng.uniform(size=2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_contribute_half(self):
        y = np.array([0, 1], dtype=float)
        scores = np.array([0.5, 0.5])
        assert roc_auc(y, scores) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        y = (rng.uniform(size=50) < 0.4).astype(float)
        scores = rng.normal(size=50)
        pos = scores[y == 1]
        neg = scores[y == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert roc_auc(y, scores) == pytest.approx(expected)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(5), np.arange(5.0))

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(2)
        y = (rng.uniform(size=100) < 0.5).astype(float)
        scores = rng.normal(size=100)
        a = roc_auc(y, scores)
        b = roc_auc(y, np.exp(scores))
        assert a == pytest.approx(b)
