"""Tests for the synthetic Superconductivity generator."""

import numpy as np
import pytest

from repro.datasets import (
    FEATURE_NAMES,
    PROPERTIES,
    STATS,
    TARGET_FEATURES,
    load_superconductivity,
)


@pytest.fixture(scope="module")
def data():
    return load_superconductivity(n=3000, seed=0)


class TestSchema:
    def test_81_features(self, data):
        assert data.X_train.shape[1] == 81
        assert len(data.feature_names) == 81
        assert len(FEATURE_NAMES) == 81

    def test_naming_scheme(self):
        assert FEATURE_NAMES[0] == "number_of_elements"
        assert "wtd_entropy_atomic_mass" in FEATURE_NAMES
        assert len(PROPERTIES) * len(STATS) + 1 == 81

    def test_feature_index_lookup(self, data):
        idx = data.feature_index("wtd_entropy_atomic_mass")
        assert data.feature_names[idx] == "wtd_entropy_atomic_mass"

    def test_split_sizes(self, data):
        assert len(data.X_train) == 2400
        assert len(data.X_test) == 600


class TestStatisticalConsistency:
    def test_number_of_elements_range(self, data):
        k = data.X_train[:, 0]
        assert k.min() >= 1 and k.max() <= 9
        np.testing.assert_array_equal(k, np.round(k))

    def test_range_nonnegative(self, data):
        for prop in PROPERTIES:
            col = data.X_train[:, data.feature_index(f"range_{prop}")]
            assert col.min() >= 0

    def test_entropy_bounds(self, data):
        """Entropy of at most 9 components is bounded by ln(9)."""
        for prop in PROPERTIES:
            col = data.X_train[:, data.feature_index(f"entropy_{prop}")]
            assert col.min() >= -1e-12
            assert col.max() <= np.log(9) + 1e-9

    def test_single_element_degenerate_stats(self, data):
        """Materials with one element have zero entropy, range and std."""
        single = data.X_train[:, 0] == 1
        if single.any():
            for stat in ("entropy", "range", "std"):
                col = data.X_train[single, data.feature_index(f"{stat}_atomic_mass")]
                np.testing.assert_allclose(col, 0.0, atol=1e-9)

    def test_gmean_below_mean(self, data):
        """AM-GM inequality must hold for every generated material."""
        mean = data.X_train[:, data.feature_index("mean_atomic_mass")]
        gmean = data.X_train[:, data.feature_index("gmean_atomic_mass")]
        assert np.all(gmean <= mean + 1e-9)

    def test_deterministic(self):
        a = load_superconductivity(n=200, seed=5)
        b = load_superconductivity(n=200, seed=5)
        np.testing.assert_array_equal(a.X_train, b.X_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)


class TestTarget:
    def test_nonnegative_temperature(self, data):
        assert data.y_train.min() >= 0.0

    def test_weam_jump_effect(self, data):
        """Materials above the WEAM ~1.1 jump run much hotter on average."""
        weam = data.X_train[:, data.feature_index("wtd_entropy_atomic_mass")]
        above = data.y_train[weam > 1.3]
        below = data.y_train[weam < 0.9]
        assert above.mean() > below.mean() + 15.0

    def test_target_features_have_signal(self, data):
        """A forest trained on the data must rank the target features high."""
        from repro.forest import GradientBoostingRegressor

        forest = GradientBoostingRegressor(
            n_estimators=25, num_leaves=32, learning_rate=0.2, random_state=0
        )
        forest.fit(data.X_train, data.y_train)
        imp = forest.feature_importance()
        top10 = set(np.argsort(-imp)[:10])
        driver_idx = {data.feature_index(name) for name in TARGET_FEATURES[:2]}
        assert driver_idx <= top10

    def test_n_validation(self):
        with pytest.raises(ValueError):
            load_superconductivity(n=5)
