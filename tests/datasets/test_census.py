"""Tests for the synthetic Census generator."""

import numpy as np
import pytest

from repro.datasets import CATEGORICAL_LEVELS, load_census


@pytest.fixture(scope="module")
def data():
    return load_census(n=6000, seed=0)


class TestSchema:
    def test_one_hot_width(self, data):
        expected = 6 + sum(len(v) for v in CATEGORICAL_LEVELS.values())
        assert data.X_train.shape[1] == expected
        assert len(data.feature_names) == expected

    def test_numeric_columns_first(self, data):
        assert data.feature_names[:6] == [
            "age",
            "fnlwgt",
            "education_num",
            "capital_gain",
            "capital_loss",
            "hours_per_week",
        ]

    def test_one_hot_columns_binary_and_exclusive(self, data):
        for col, levels in CATEGORICAL_LEVELS.items():
            idx = [data.feature_index(f"{col}={lvl}") for lvl in levels]
            block = data.X_train[:, idx]
            assert set(np.unique(block)) <= {0.0, 1.0}
            np.testing.assert_array_equal(block.sum(axis=1), 1.0)

    def test_education_string_column_dropped(self, data):
        """Pre-processing drops 'education' in favour of education_num."""
        assert not any(n.startswith("education=") for n in data.feature_names)
        assert "education_num" in data.feature_names


class TestMarginals:
    def test_label_binary(self, data):
        assert set(np.unique(data.y_train)) <= {0.0, 1.0}

    def test_positive_rate_realistic(self, data):
        """The real Adult dataset has ~24% positive labels."""
        rate = data.y_train.mean()
        assert 0.15 < rate < 0.35

    def test_age_range(self, data):
        age = data.X_train[:, data.feature_index("age")]
        assert age.min() >= 17 and age.max() <= 90

    def test_education_num_range(self, data):
        edu = data.X_train[:, data.feature_index("education_num")]
        assert edu.min() >= 1 and edu.max() <= 16

    def test_capital_gain_mostly_zero(self, data):
        gain = data.X_train[:, data.feature_index("capital_gain")]
        assert np.mean(gain == 0) > 0.8


class TestDependencies:
    def test_education_positively_correlated_with_income(self, data):
        """The qualitative Figure 10 finding the splines must recover."""
        edu = data.X_train[:, data.feature_index("education_num")]
        high = data.y_train[edu >= 13].mean()
        low = data.y_train[edu <= 9].mean()
        assert high > low + 0.1

    def test_married_effect(self, data):
        married = data.X_train[
            :, data.feature_index("marital_status=Married-civ-spouse")
        ]
        assert data.y_train[married == 1].mean() > data.y_train[married == 0].mean()

    def test_deterministic(self):
        a = load_census(n=300, seed=9)
        b = load_census(n=300, seed=9)
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_n_validation(self):
        with pytest.raises(ValueError):
            load_census(n=3)

    def test_forest_learns_the_task(self, data):
        from repro.forest import GradientBoostingClassifier

        forest = GradientBoostingClassifier(
            n_estimators=30, num_leaves=16, learning_rate=0.2, random_state=0
        )
        forest.fit(data.X_train, data.y_train)
        acc = np.mean(forest.predict(data.X_test) == data.y_test)
        baseline = max(data.y_test.mean(), 1 - data.y_test.mean())
        assert acc > baseline + 0.05
