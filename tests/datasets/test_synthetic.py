"""Tests for the paper's synthetic generators (g', h, g'')."""

import numpy as np
import pytest

from repro.datasets import (
    GENERATORS,
    all_interaction_triples,
    all_pairs,
    g_double_prime,
    g_prime,
    interaction_bump,
    make_d_double_prime,
    make_d_prime,
    sigmoid_1d,
)


class TestGeneratorFunctions:
    def test_g_prime_at_origin(self):
        """g'(0) = 0 + 0 + sigma(-25) + 0 + 2 = ~2."""
        value = g_prime(np.zeros((1, 5)))[0]
        assert value == pytest.approx(2.0, abs=1e-8)

    def test_g_prime_is_sum_of_generators(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (50, 5))
        manual = sum(gen(X[:, j]) for j, gen in enumerate(GENERATORS))
        np.testing.assert_allclose(g_prime(X), manual)

    def test_generators_bounded(self):
        """Each generator's contribution stays within the paper's [-1, 2]."""
        x = np.linspace(0, 1, 1000)
        for gen in GENERATORS:
            values = gen(x)
            assert values.min() >= -1.0 - 1e-9
            assert values.max() <= 2.0 + 1e-9

    def test_sigmoid_generator_midpoint(self):
        assert GENERATORS[2](np.array([0.5]))[0] == pytest.approx(0.5)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            g_prime(np.zeros((3, 4)))


class TestInteractionBump:
    def test_peak_at_center(self):
        peak = interaction_bump(np.array([0.5]), np.array([0.5]))[0]
        assert peak == pytest.approx(2.0)

    def test_symmetric(self):
        a = interaction_bump(np.array([0.2]), np.array([0.8]))
        b = interaction_bump(np.array([0.8]), np.array([0.2]))
        assert a[0] == pytest.approx(b[0])

    def test_decreases_away_from_center(self):
        near = interaction_bump(np.array([0.6]), np.array([0.6]))[0]
        far = interaction_bump(np.array([1.0]), np.array([1.0]))[0]
        assert near > far

    def test_g_double_prime_adds_bumps(self):
        X = np.full((1, 5), 0.5)
        base = g_prime(X)[0]
        with_pairs = g_double_prime(X, [(0, 1), (2, 3)])[0]
        assert with_pairs == pytest.approx(base + 4.0)  # two centered bumps

    def test_invalid_pair_rejected(self):
        with pytest.raises(ValueError):
            g_double_prime(np.zeros((1, 5)), [(0, 7)])
        with pytest.raises(ValueError):
            g_double_prime(np.zeros((1, 5)), [(2, 2)])


class TestDatasets:
    def test_split_sizes(self):
        data = make_d_prime(n=1000, train_fraction=0.8, seed=0)
        assert len(data.X_train) == 800
        assert len(data.X_test) == 200
        assert data.n_features == 5

    def test_deterministic(self):
        a = make_d_prime(n=500, seed=3)
        b = make_d_prime(n=500, seed=3)
        np.testing.assert_array_equal(a.X_train, b.X_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_noise_level(self):
        """Per-generator noise: residual std ~ 0.1 * sqrt(5)."""
        data = make_d_prime(n=20_000, seed=1)
        X = np.vstack([data.X_train, data.X_test])
        y = np.concatenate([data.y_train, data.y_test])
        resid = y - g_prime(X)
        assert np.std(resid) == pytest.approx(0.1 * np.sqrt(5), rel=0.1)

    def test_noiseless_option(self):
        data = make_d_prime(n=200, noise_std=0.0, seed=2)
        np.testing.assert_allclose(data.y_train, g_prime(data.X_train), atol=1e-12)

    def test_d_double_prime_records_pairs(self):
        pairs = [(0, 1), (2, 3)]
        data = make_d_double_prime(pairs, n=200, seed=0)
        assert data.pairs == pairs

    def test_features_in_unit_cube(self):
        data = make_d_prime(n=1000, seed=4)
        assert data.X_train.min() >= 0.0
        assert data.X_train.max() <= 1.0

    def test_train_fraction_validation(self):
        with pytest.raises(ValueError):
            make_d_prime(n=100, train_fraction=1.0)


class TestCombinatorics:
    def test_ten_pairs(self):
        pairs = all_pairs()
        assert len(pairs) == 10
        assert len(set(pairs)) == 10

    def test_120_triples(self):
        """The paper's Fig 6 sweep: C(10, 3) = 120 interaction sets."""
        triples = all_interaction_triples()
        assert len(triples) == 120
        assert all(len(t) == 3 for t in triples)
        assert len(set(triples)) == 120


class TestSigmoid1d:
    def test_shape_and_range(self):
        X, y = sigmoid_1d(n=500, seed=0)
        assert X.shape == (500, 1)
        assert np.all((y > 0) & (y < 1))

    def test_steepness_at_center(self):
        X, y = sigmoid_1d(n=10_000, seed=0)
        below = y[X[:, 0] < 0.4]
        above = y[X[:, 0] > 0.6]
        assert below.max() < 0.01
        assert above.min() > 0.99
