"""The `repro ledger` command family, driven in-process via main(argv)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.forest import load_forest, save_forest
from repro.forest.packed import forest_fingerprint
from repro.ledger import (
    LedgerStore,
    record_event,
    record_model,
    record_surrogate,
)


@pytest.fixture()
def ledger_dir(tmp_path, ledger_forest, ledger_forest_v2,
               ledger_explanation):
    """A populated ledger: two model versions, one surrogate, a lineage."""
    store = LedgerStore(tmp_path)
    fp1 = forest_fingerprint(ledger_forest)
    fp2 = forest_fingerprint(ledger_forest_v2)
    m1 = record_model(store, ledger_forest)
    m2 = record_model(store, ledger_forest_v2)
    s1 = record_surrogate(store, ledger_explanation, fp1)
    record_event(store, "register", "bench",
                 {"fingerprint": fp1, "model_entry": m1.entry_id})
    record_event(store, "hot-swap", "bench",
                 {"fingerprint": fp2, "model_entry": m2.entry_id,
                  "from_fingerprint": fp1})
    return tmp_path, {"m1": m1, "m2": m2, "s1": s1,
                      "fp1": fp1, "fp2": fp2}


def test_log_lists_entries_and_audits(ledger_dir, capsys):
    path, refs = ledger_dir
    assert main(["ledger", "--path", str(path), "log", "--audit"]) == 0
    out = capsys.readouterr().out
    assert "audit ok" in out
    assert refs["m1"].short_id in out
    assert refs["s1"].short_id in out
    assert "5 entries" in out


def test_log_filters_by_kind_and_key(ledger_dir, capsys):
    path, refs = ledger_dir
    assert main([
        "ledger", "--path", str(path), "log", "--kind", "event",
        "--key", "bench",
    ]) == 0
    out = capsys.readouterr().out
    assert "action=register" in out
    assert "action=hot-swap" in out
    assert refs["s1"].short_id not in out


def test_show_summarizes_then_dumps_payload(ledger_dir, capsys):
    path, refs = ledger_dir
    assert main([
        "ledger", "--path", str(path), "show", refs["m1"].short_id,
    ]) == 0
    header = json.loads(capsys.readouterr().out)
    assert header["entry_id"] == refs["m1"].entry_id
    assert header["payload_keys"] == ["fingerprint", "model", "n_features"]
    assert "payload" not in header
    assert main([
        "ledger", "--path", str(path), "show", refs["m1"].short_id,
        "--payload",
    ]) == 0
    full = json.loads(capsys.readouterr().out)
    assert full["payload"]["fingerprint"] == refs["fp1"]


def test_verify_surrogate_in_fresh_process_style(ledger_dir, capsys):
    path, refs = ledger_dir
    code = main([
        "ledger", "--path", str(path), "verify", refs["s1"].short_id,
    ])
    assert code == 0
    assert "bit for bit" in capsys.readouterr().out


def test_diff_renders_and_jsons(ledger_dir, ledger_explanation_v2, capsys):
    path, refs = ledger_dir
    store = LedgerStore(path)
    s2 = record_surrogate(store, ledger_explanation_v2, refs["fp2"])
    assert main([
        "ledger", "--path", str(path), "diff",
        refs["s1"].short_id, s2.short_id,
    ]) == 0
    assert "SURROGATE DIFF" in capsys.readouterr().out
    assert main([
        "ledger", "--path", str(path), "diff",
        refs["s1"].short_id, s2.short_id, "--json",
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["identical_forest"] is False


def test_rollback_writes_previous_forest(ledger_dir, tmp_path_factory,
                                         capsys):
    path, refs = ledger_dir
    out = tmp_path_factory.mktemp("rollback") / "restored.json"
    code = main([
        "ledger", "--path", str(path), "rollback", "bench",
        "--out", str(out),
    ])
    assert code == 0
    assert f"{refs['fp2']} -> {refs['fp1']}" in capsys.readouterr().out
    restored = load_forest(out)
    assert forest_fingerprint(restored) == refs["fp1"]
    # The rollback itself became a ledger event.
    events = LedgerStore(path).entries(kind="event", key="bench")
    assert events[-1].payload["action"] == "rollback"
    assert events[-1].payload["via"] == "cli"


def test_rollback_without_lineage_errors(tmp_path, capsys):
    out = tmp_path / "never.json"
    code = main([
        "ledger", "--path", str(tmp_path / "ledger"), "rollback", "ghost",
        "--out", str(out),
    ])
    assert code == 1
    assert "no ledgered lineage" in capsys.readouterr().err
    assert not out.exists()


def test_explain_ledger_flag_records_both_entries(tmp_path, ledger_forest,
                                                  capsys):
    model_path = tmp_path / "model.json"
    save_forest(ledger_forest, model_path)
    ledger_path = tmp_path / "ledger"
    code = main([
        "explain", str(model_path),
        "--splines", "3", "--samples", "800", "--k", "8",
        "--ledger", str(ledger_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ledgered: model entry" in out
    assert f"fingerprint {forest_fingerprint(ledger_forest)}" in out
    store = LedgerStore(ledger_path)
    assert len(store.entries(kind="model")) == 1
    assert len(store.entries(kind="surrogate")) == 1
