"""Bit-for-bit verification: refit from the ledger alone and compare."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import LedgerError
from repro.forest.packed import forest_fingerprint
from repro.ledger import (
    LedgerStore,
    record_event,
    record_model,
    record_surrogate,
    render_verify,
    verify_entry,
)


@pytest.fixture()
def ledgered(tmp_path, ledger_forest, ledger_explanation):
    store = LedgerStore(tmp_path)
    fingerprint = forest_fingerprint(ledger_forest)
    model_entry = record_model(store, ledger_forest)
    surrogate_entry = record_surrogate(store, ledger_explanation, fingerprint)
    return store, model_entry, surrogate_entry


def test_verify_model_entry(ledgered):
    store, model_entry, _ = ledgered
    report = verify_entry(store, model_entry.entry_id)
    assert report["match"] is True
    assert report["kind"] == "model"
    assert report["n_trees"] > 0
    assert "VERIFIED" in render_verify(report)


def test_verify_surrogate_bit_for_bit_from_fresh_store(ledgered, tmp_path):
    _, _, surrogate_entry = ledgered
    # A fresh store (fresh replay — "from the ledger alone") must refit
    # GEF from the archived forest + config and match byte for byte.
    fresh = LedgerStore(tmp_path)
    report = verify_entry(fresh, surrogate_entry.short_id)
    assert report["match"] is True
    assert report["mismatches"] == []
    assert "bit for bit" in render_verify(report)


def test_verify_detects_tampered_surrogate(ledgered, tmp_path):
    store, _, surrogate_entry = ledgered
    name = f"{surrogate_entry.seq:08d}-{surrogate_entry.short_id}.json"
    path = tmp_path / "segments" / name
    data = json.loads(path.read_text())
    coef = data["payload"]["explanation"]["gam"]["coef"]
    coef[0] += 1e-9  # a one-ULP-scale nudge must not survive verification
    path.write_text(json.dumps(data))
    # Tampering broke the content address, so a fresh replay refuses the
    # segment outright — the tamper cannot even masquerade as a version.
    assert len(LedgerStore(tmp_path)) < len(store)


def test_verify_mismatch_reports_paths(ledgered):
    store, _, surrogate_entry = ledgered
    # Forge an in-memory entry whose archive diverges (content address
    # recomputed so verification reaches the refit-and-compare stage).
    from repro.ledger import entry_id_for

    payload = json.loads(json.dumps(surrogate_entry.payload))
    payload["explanation"]["gam"]["coef"][0] += 0.5
    forged_id = entry_id_for(
        "surrogate", surrogate_entry.key, payload, surrogate_entry.parent
    )
    forged = surrogate_entry.__class__(
        seq=surrogate_entry.seq + 100, entry_id=forged_id, kind="surrogate",
        key=surrogate_entry.key, parent=surrogate_entry.parent,
        payload=payload,
    )
    store._by_id[forged_id] = forged  # inject without touching disk
    report = verify_entry(store, forged_id)
    assert report["match"] is False
    assert any("coef" in p for p in report["mismatches"])
    assert "MISMATCH" in render_verify(report)


def test_verify_event_entry_raises(ledgered):
    store, _, _ = ledgered
    event = record_event(store, "x", "k")
    with pytest.raises(LedgerError):
        verify_entry(store, event.entry_id)
