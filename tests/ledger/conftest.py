"""Ledger test fixtures: one small forest + one fast fitted explanation.

The surrogate fixtures are session-scoped because a GEF fit is the
expensive part; every test that mutates state gets its own ledger
directory via ``tmp_path``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GEF, GEFConfig
from repro.forest import GradientBoostingRegressor

GEF_SMALL = dict(n_univariate=3, n_samples=800, k_points=8, n_splines=6,
                 random_state=0)


def _train(n_estimators: int, seed: int):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(400, 5))
    y = X[:, 0] * 2 + np.sin(2 * X[:, 1]) + 0.1 * rng.normal(size=400)
    model = GradientBoostingRegressor(
        n_estimators=n_estimators, num_leaves=8, learning_rate=0.2,
        random_state=seed,
    )
    model.fit(X, y)
    return model


@pytest.fixture(scope="session")
def ledger_forest():
    """The v1 forest every ledger test records."""
    return _train(8, seed=1)


@pytest.fixture(scope="session")
def ledger_forest_v2():
    """A structurally different forest (hot-swap / rollback target)."""
    return _train(12, seed=2)


@pytest.fixture(scope="session")
def ledger_explanation(ledger_forest):
    """A fast fitted GEF explanation of ``ledger_forest``."""
    return GEF(GEFConfig(**GEF_SMALL)).explain(ledger_forest)


@pytest.fixture(scope="session")
def ledger_explanation_v2(ledger_forest_v2):
    """A fitted explanation of the v2 forest (same config)."""
    return GEF(GEFConfig(**GEF_SMALL)).explain(ledger_forest_v2)
