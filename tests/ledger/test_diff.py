"""Structural surrogate diff: term identity, coef deltas, rendering."""

from __future__ import annotations

import pytest

from repro.core.errors import LedgerError
from repro.forest.packed import forest_fingerprint
from repro.ledger import (
    LedgerStore,
    diff_entries,
    diff_surrogates,
    record_event,
    record_surrogate,
    render_diff,
    term_identity,
)


def test_term_identity_labels():
    assert term_identity({"type": "intercept"}) == "intercept"
    assert term_identity({"type": "spline", "feature": 3}) == "spline(x3)"
    assert term_identity({"type": "linear", "feature": 0}) == "linear(x0)"
    assert term_identity({"type": "factor", "feature": 2}) == "factor(x2)"
    assert term_identity({"type": "tensor", "features": [1, 4]}) == (
        "tensor(x1,x4)"
    )


def _ledgered(tmp_path, forests, explanations):
    store = LedgerStore(tmp_path)
    entries = []
    for forest, explanation in zip(forests, explanations):
        entries.append(
            record_surrogate(store, explanation, forest_fingerprint(forest))
        )
    return store, entries


def test_diff_identical_entries_is_all_unchanged(
    tmp_path, ledger_forest, ledger_explanation
):
    store, (entry,) = _ledgered(
        tmp_path, [ledger_forest], [ledger_explanation]
    )
    diff = diff_surrogates(entry.payload, entry.payload)
    assert diff["identical_forest"] is True
    assert diff["terms"]["added"] == []
    assert diff["terms"]["removed"] == []
    assert diff["terms"]["changed"] == []
    assert len(diff["terms"]["unchanged"]) >= 2  # intercept + >=1 spline
    assert diff["config_changed"] == []
    for cell in diff["fidelity"].values():
        assert cell["delta"] == pytest.approx(0.0)


def test_diff_across_versions_reports_changes(
    tmp_path, ledger_forest, ledger_forest_v2,
    ledger_explanation, ledger_explanation_v2,
):
    store, (a, b) = _ledgered(
        tmp_path,
        [ledger_forest, ledger_forest_v2],
        [ledger_explanation, ledger_explanation_v2],
    )
    diff = diff_entries(a, b)
    assert diff["identical_forest"] is False
    assert diff["a"]["fingerprint"] != diff["b"]["fingerprint"]
    terms = diff["terms"]
    touched = (
        terms["added"] + terms["removed"]
        + [c["term"] for c in terms["changed"]]
    )
    # Different forests must move *something* — coefficients at minimum.
    assert touched
    for item in terms["changed"]:
        assert item["max_abs_coef_delta"] > 0 or item["basis_changed"]
    # Same explain config on both sides.
    assert diff["config_changed"] == []


def test_render_diff_mentions_the_headline_counts(
    tmp_path, ledger_forest, ledger_forest_v2,
    ledger_explanation, ledger_explanation_v2,
):
    store, (a, b) = _ledgered(
        tmp_path,
        [ledger_forest, ledger_forest_v2],
        [ledger_explanation, ledger_explanation_v2],
    )
    text = render_diff(diff_entries(a, b))
    assert "SURROGATE DIFF" in text
    assert "same forest: False" in text
    assert "terms:" in text


def test_diff_entries_rejects_non_surrogates(tmp_path):
    store = LedgerStore(tmp_path)
    event = record_event(store, "x", "k")
    with pytest.raises(LedgerError):
        diff_entries(event, event)


def test_diff_surrogates_rejects_bare_payloads():
    with pytest.raises(LedgerError):
        diff_surrogates({"no": "archive"}, {"no": "archive"})
