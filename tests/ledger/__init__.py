"""Tests of the versioned model + explanation ledger."""
