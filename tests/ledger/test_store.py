"""The raw store: content addressing, chains, replay, crash safety.

Zero sleeps: concurrency is exercised with barriers and thread joins,
crash scenarios by planting torn/corrupt segment files directly.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.core.errors import (
    LedgerCorruptionError,
    LedgerEntryNotFoundError,
    LedgerError,
)
from repro.ledger import LedgerStore, entry_id_for


def _event(n: int) -> dict:
    return {"action": "tick", "at_s": float(n), "n": n}


def test_append_assigns_content_address(tmp_path):
    store = LedgerStore(tmp_path)
    entry = store.append("event", "chain", _event(1))
    assert entry.entry_id == entry_id_for("event", "chain", _event(1), None)
    assert entry.seq == 1
    assert entry.parent is None


def test_chain_parents_link_and_heads_advance(tmp_path):
    store = LedgerStore(tmp_path)
    first = store.append("event", "chain", _event(1))
    second = store.append("event", "chain", _event(2))
    assert second.parent == first.entry_id
    assert store.head("event", "chain").entry_id == second.entry_id
    chain = store.chain("event", "chain")
    assert [e.entry_id for e in chain] == [first.entry_id, second.entry_id]


def test_identical_append_deduplicates(tmp_path):
    store = LedgerStore(tmp_path)
    first = store.append("event", "chain", _event(1))
    second = store.append("event", "chain", _event(2))
    # Same content at the same chain position is idempotent...
    again = store.append("event", "chain", _event(2), parent=first.entry_id)
    assert again.entry_id == second.entry_id
    assert len(store) == 2
    # ...but the same content *re-appended at the head* is a new entry:
    # event chains must record repeated actions, not swallow them.
    repeat = store.append("event", "chain", _event(2))
    assert repeat.entry_id != second.entry_id
    assert len(store) == 3


def test_distinct_chains_are_independent(tmp_path):
    store = LedgerStore(tmp_path)
    a = store.append("event", "a", _event(1))
    b = store.append("event", "b", _event(1))
    assert a.parent is None and b.parent is None
    assert a.entry_id != b.entry_id  # key is hashed into the id


def test_replay_rebuilds_identical_index(tmp_path):
    store = LedgerStore(tmp_path)
    for n in range(5):
        store.append("event", f"chain{n % 2}", _event(n))
    replayed = LedgerStore(tmp_path)
    assert len(replayed) == 5
    assert [e.entry_id for e in replayed.entries()] == [
        e.entry_id for e in store.entries()
    ]
    assert replayed.head("event", "chain0").entry_id == (
        store.head("event", "chain0").entry_id
    )


def test_get_accepts_unique_prefix_and_rejects_unknown(tmp_path):
    store = LedgerStore(tmp_path)
    entry = store.append("event", "chain", _event(1))
    assert store.get(entry.entry_id[:8]).entry_id == entry.entry_id
    with pytest.raises(LedgerEntryNotFoundError):
        store.get("0" * 16)
    with pytest.raises(LedgerEntryNotFoundError):
        store.get("abc")  # too short to be a prefix


def test_append_validates_kind_key_and_payload(tmp_path):
    store = LedgerStore(tmp_path)
    with pytest.raises(LedgerError):
        store.append("nope", "k", _event(1))
    with pytest.raises(LedgerError):
        store.append("event", "", _event(1))
    with pytest.raises(LedgerError):
        store.append("event", "k", {"missing": "required keys"})
    with pytest.raises(LedgerError):
        store.append("model", "k", {"fingerprint": 1})  # no "model"


def test_unserializable_payload_does_not_corrupt(tmp_path):
    store = LedgerStore(tmp_path)
    with pytest.raises(LedgerError):
        store.append("event", "k", {"action": "x", "at_s": 0.0, "bad": object()})
    # The failed append left no committed segment behind.
    assert len(LedgerStore(tmp_path)) == 0


# ----------------------------------------------------------------------
# crash safety
# ----------------------------------------------------------------------
def test_torn_segment_is_skipped_on_replay(tmp_path):
    store = LedgerStore(tmp_path)
    keep = store.append("event", "chain", _event(1))
    # A crash mid-write can only leave a *temp* file (os.replace is
    # atomic), but simulate the worst case: a torn file that somehow
    # matches the committed naming convention.
    torn = tmp_path / "segments" / f"{2:08d}-{'ab' * 8}.json"
    torn.write_text('{"seq": 2, "entry_id": "truncat')
    recovered = LedgerStore(tmp_path)
    assert len(recovered) == 1
    assert recovered.get(keep.entry_id).payload == keep.payload
    # ...and appending continues cleanly past the junk.
    recovered.append("event", "chain", _event(2))
    assert len(LedgerStore(tmp_path)) == 2


def test_leftover_tempfile_is_invisible(tmp_path):
    store = LedgerStore(tmp_path)
    store.append("event", "chain", _event(1))
    (tmp_path / "segments" / ".seg.crashed.tmp").write_text("{garbage")
    assert len(LedgerStore(tmp_path)) == 1


def test_hash_mismatch_is_skipped_on_replay_but_fails_audit(tmp_path):
    store = LedgerStore(tmp_path)
    entry = store.append("event", "chain", _event(1))
    name = f"{entry.seq:08d}-{entry.entry_id[:16]}.json"
    path = tmp_path / "segments" / name
    data = json.loads(path.read_text())
    data["payload"]["n"] = 999  # tamper without recomputing the id
    path.write_text(json.dumps(data))
    recovered = LedgerStore(tmp_path)
    assert len(recovered) == 0  # replay refuses the tampered entry
    with pytest.raises(LedgerCorruptionError):
        recovered.audit()


def test_audit_ok_on_clean_store(tmp_path):
    store = LedgerStore(tmp_path)
    for n in range(3):
        store.append("event", "chain", _event(n))
    assert store.audit() == 3


def test_concurrent_appends_serialize_without_corruption(tmp_path):
    store = LedgerStore(tmp_path)
    n_threads, per_thread = 8, 10
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def worker(i: int) -> None:
        barrier.wait()
        try:
            for n in range(per_thread):
                store.append("event", f"chain{i}", _event(n))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors
    assert len(store) == n_threads * per_thread
    # Every replayer reconstructs the same total order and passes audit.
    replayed = LedgerStore(tmp_path)
    assert replayed.audit() == n_threads * per_thread
    assert [e.entry_id for e in replayed.entries()] == [
        e.entry_id for e in store.entries()
    ]
    for i in range(n_threads):
        chain = replayed.chain("event", f"chain{i}")
        assert [e.payload["n"] for e in chain] == list(range(per_thread))


def test_two_stores_same_directory_converge(tmp_path):
    a = LedgerStore(tmp_path)
    b = LedgerStore(tmp_path)
    ea = a.append("event", "x", _event(1))
    # b has not seen a's entry yet; its next append folds it in first.
    eb = b.append("event", "x", _event(2))
    assert eb.parent == ea.entry_id
    assert eb.seq > ea.seq
    a.refresh()
    assert [e.entry_id for e in a.entries()] == [
        e.entry_id for e in b.entries()
    ]


def test_replay_order_breaks_seq_ties_by_entry_id(tmp_path):
    store = LedgerStore(tmp_path)
    e1 = store.append("event", "x", _event(1))
    # Plant a colliding-seq segment (another process that raced the same
    # sequence number); both must survive replay in a deterministic order.
    body_kwargs = dict(kind="event", key="y", payload=_event(9), parent=None)
    other_id = entry_id_for(
        body_kwargs["kind"], body_kwargs["key"], body_kwargs["payload"], None
    )
    record = {
        "schema": 1,
        "seq": e1.seq,
        "entry_id": other_id,
        **body_kwargs,
    }
    path = tmp_path / "segments" / f"{e1.seq:08d}-{other_id[:16]}.json"
    path.write_text(json.dumps(record, sort_keys=True, separators=(",", ":")))
    replayed = LedgerStore(tmp_path)
    assert len(replayed) == 2
    expected = sorted([e1.entry_id, other_id])
    got = [e.entry_id for e in replayed.entries()]
    assert got == expected
    # A second replayer agrees bit for bit.
    assert [e.entry_id for e in LedgerStore(tmp_path).entries()] == expected


def test_foreign_junk_files_are_ignored(tmp_path):
    store = LedgerStore(tmp_path)
    store.append("event", "x", _event(1))
    (tmp_path / "segments" / "README.txt").write_text("not a segment")
    os.mkdir(tmp_path / "segments" / "subdir")
    assert len(LedgerStore(tmp_path)) == 1
