"""Typed records: model / surrogate / event schemas over the raw store."""

from __future__ import annotations

import pytest

from repro.core.config import GEFConfig, explain_config_hash
from repro.core.errors import LedgerEntryNotFoundError, LedgerError
from repro.forest.packed import forest_fingerprint
from repro.ledger import (
    LedgerStore,
    config_from_archive,
    explanation_from_entry,
    forest_from_entry,
    latest_surrogate,
    model_entry_for,
    model_lineage,
    previous_model_entry,
    record_event,
    record_model,
    record_surrogate,
    surrogate_key,
)

from .conftest import GEF_SMALL


def test_record_model_roundtrip(tmp_path, ledger_forest):
    store = LedgerStore(tmp_path)
    entry = record_model(store, ledger_forest)
    assert entry.kind == "model"
    assert entry.key == str(forest_fingerprint(ledger_forest))
    rebuilt = forest_from_entry(entry)
    assert forest_fingerprint(rebuilt) == forest_fingerprint(ledger_forest)


def test_record_model_is_idempotent(tmp_path, ledger_forest):
    store = LedgerStore(tmp_path)
    first = record_model(store, ledger_forest)
    again = record_model(store, ledger_forest)
    assert again.entry_id == first.entry_id
    assert len(store) == 1


def test_record_surrogate_roundtrip(tmp_path, ledger_forest,
                                    ledger_explanation):
    store = LedgerStore(tmp_path)
    fingerprint = forest_fingerprint(ledger_forest)
    entry = record_surrogate(store, ledger_explanation, fingerprint)
    config_hash = explain_config_hash(ledger_explanation.config)
    assert entry.key == surrogate_key(fingerprint, config_hash)
    assert entry.payload["config_hash"] == config_hash
    rebuilt = explanation_from_entry(entry)
    assert rebuilt.features == ledger_explanation.features
    # Idempotent too: the archive is deterministic up to timings, and
    # the head-payload check only fires on a byte-identical payload.
    again = record_surrogate(store, ledger_explanation, fingerprint)
    assert again.entry_id == entry.entry_id


def test_record_event_chains_and_repeats(tmp_path):
    store = LedgerStore(tmp_path)
    first = record_event(store, "register", "m1", {"fingerprint": 7})
    second = record_event(store, "register", "m1", {"fingerprint": 7})
    # Same action twice is two events — the audit trail never swallows
    # a repeat; they differ through their parent links.
    assert second.entry_id != first.entry_id
    assert second.parent == first.entry_id
    assert first.payload["action"] == "register"
    assert isinstance(first.payload["at_s"], float)


def test_model_entry_for_missing_raises(tmp_path):
    store = LedgerStore(tmp_path)
    with pytest.raises(LedgerEntryNotFoundError):
        model_entry_for(store, 12345)


def test_forest_from_entry_rejects_wrong_kind(tmp_path):
    store = LedgerStore(tmp_path)
    event = record_event(store, "x", "k")
    with pytest.raises(LedgerError):
        forest_from_entry(event)
    with pytest.raises(LedgerError):
        explanation_from_entry(event)


def test_forest_from_entry_detects_tampered_archive(tmp_path, ledger_forest):
    store = LedgerStore(tmp_path)
    entry = record_model(store, ledger_forest)
    tampered = dict(entry.payload)
    tampered["fingerprint"] = int(tampered["fingerprint"]) + 1
    forged = entry.__class__(
        seq=entry.seq, entry_id=entry.entry_id, kind=entry.kind,
        key=entry.key, parent=entry.parent, payload=tampered,
    )
    with pytest.raises(LedgerError):
        forest_from_entry(forged)


def test_latest_surrogate_lookup(tmp_path, ledger_forest, ledger_forest_v2,
                                 ledger_explanation, ledger_explanation_v2):
    store = LedgerStore(tmp_path)
    fp1 = forest_fingerprint(ledger_forest)
    fp2 = forest_fingerprint(ledger_forest_v2)
    e1 = record_surrogate(store, ledger_explanation, fp1)
    e2 = record_surrogate(store, ledger_explanation_v2, fp2)
    config_hash = explain_config_hash(ledger_explanation.config)
    assert latest_surrogate(store, fp1, config_hash).entry_id == e1.entry_id
    assert latest_surrogate(store, fp1).entry_id == e1.entry_id
    assert latest_surrogate(store, fp2).entry_id == e2.entry_id
    assert latest_surrogate(store, 999999) is None
    assert latest_surrogate(store, fp1, "deadbeefdeadbeef") is None


def test_config_from_archive_roundtrips(ledger_explanation):
    from repro.core.explanation_io import explanation_to_dict

    archive = explanation_to_dict(ledger_explanation)["config"]
    config = config_from_archive(archive)
    assert isinstance(config, GEFConfig)
    assert explain_config_hash(config) == explain_config_hash(
        ledger_explanation.config
    )
    assert config.n_univariate == GEF_SMALL["n_univariate"]


def test_model_lineage_and_rollback_target(tmp_path, ledger_forest,
                                           ledger_forest_v2):
    store = LedgerStore(tmp_path)
    fp1 = forest_fingerprint(ledger_forest)
    fp2 = forest_fingerprint(ledger_forest_v2)
    m1 = record_model(store, ledger_forest)
    m2 = record_model(store, ledger_forest_v2)
    record_event(store, "register", "bench",
                 {"fingerprint": fp1, "model_entry": m1.entry_id})
    record_event(store, "hot-swap", "bench",
                 {"fingerprint": fp2, "model_entry": m2.entry_id,
                  "from_fingerprint": fp1})
    lineage = model_lineage(store, "bench")
    assert [v["fingerprint"] for v in lineage] == [fp1, fp2]
    assert [v["action"] for v in lineage] == ["register", "hot-swap"]
    target = previous_model_entry(store, "bench", fp2)
    assert target.entry_id == m1.entry_id
    # An empty lineage has nothing to roll back to.
    with pytest.raises(LedgerEntryNotFoundError):
        previous_model_entry(LedgerStore(tmp_path / "empty"), "bench", fp1)


def test_previous_model_entry_skips_unarchived_versions(tmp_path,
                                                        ledger_forest):
    store = LedgerStore(tmp_path)
    fp1 = forest_fingerprint(ledger_forest)
    record_event(store, "register", "m", {"fingerprint": fp1})
    # Lineage knows fp1, but no model entry was ever recorded for it.
    with pytest.raises(LedgerEntryNotFoundError):
        previous_model_entry(store, "m", fp1 + 1)
