"""The randomness discipline: ``as_generator`` semantics and Generator
passthrough across the public ``random_state`` parameters."""

from __future__ import annotations

import numpy as np

from repro._rng import as_generator


class TestAsGenerator:
    def test_int_seed_matches_default_rng(self):
        a = as_generator(123).uniform(size=8)
        b = np.random.default_rng(123).uniform(size=8)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_none_gives_fresh_entropy(self):
        a = as_generator(None).uniform(size=8)
        b = as_generator(None).uniform(size=8)
        assert not np.array_equal(a, b)


class TestGeneratorPropagation:
    def test_dataset_accepts_generator(self):
        from repro.datasets import make_d_prime

        seeded = make_d_prime(n=200, seed=42)
        via_gen = make_d_prime(n=200, seed=np.random.default_rng(42))
        np.testing.assert_array_equal(seeded.X_train, via_gen.X_train)
        np.testing.assert_array_equal(seeded.y_train, via_gen.y_train)

    def test_forest_accepts_generator(self):
        from repro.forest import RandomForestRegressor

        rng = np.random.default_rng(7)
        X = rng.uniform(0, 1, (200, 3))
        y = X[:, 0] + rng.normal(0, 0.1, 200)
        seeded = RandomForestRegressor(n_estimators=5, random_state=11)
        seeded.fit(X, y)
        gen = RandomForestRegressor(
            n_estimators=5, random_state=np.random.default_rng(11)
        )
        gen.fit(X, y)
        np.testing.assert_array_equal(seeded.predict(X), gen.predict(X))

    def test_shared_generator_advances_across_calls(self):
        from repro.datasets import make_d_prime

        rng = np.random.default_rng(0)
        first = make_d_prime(n=100, seed=rng)
        second = make_d_prime(n=100, seed=rng)  # same stream, further along
        assert not np.array_equal(first.X_train, second.X_train)

    def test_config_accepts_generator(self, small_forest):
        from repro.core.config import GEFConfig
        from repro.core.dataset import generate_dataset
        from repro.core.sampling import build_sampling_domains

        domains = build_sampling_domains(small_forest, "equi-size", k=8)
        seeded = generate_dataset(
            small_forest, domains, n_samples=200, random_state=5
        )
        via_gen = generate_dataset(
            small_forest, domains, n_samples=200,
            random_state=np.random.default_rng(5),
        )
        np.testing.assert_array_equal(seeded.X_train, via_gen.X_train)
        # And the config dataclass type-accepts a Generator.
        cfg = GEFConfig(random_state=np.random.default_rng(3))
        assert isinstance(cfg.random_state, np.random.Generator)
