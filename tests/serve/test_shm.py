"""Shared-memory export/attach: parity, lifecycle hygiene, leak tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forest.packed import packed_for
from repro.serve.app import ServeApp
from repro.serve.registry import ModelRegistry
from repro.serve.shm import (
    attach_block,
    attach_model_engines,
    export_block,
    export_model,
    live_segments,
)
from repro.serve.worker import install_shared_model


@pytest.fixture()
def entry(serve_forest):
    return ModelRegistry().add("m", serve_forest)


def _export(entry):
    return export_model(
        entry.model_id,
        entry.fingerprint,
        entry.n_features,
        entry.packed,
        entry.bitvector,
    )


class TestExportAttach:
    def test_block_round_trip(self):
        arrays = {
            "a": np.arange(7, dtype=np.float64),
            "b": np.arange(12, dtype=np.uint32).reshape(3, 4),
            "empty": np.empty(0, dtype=np.int64),
        }
        block, segment = export_block("t", arrays, {"k": 3})
        try:
            shm, views = attach_block(block)
            assert set(views) == set(arrays)
            for key in arrays:
                np.testing.assert_array_equal(views[key], arrays[key])
                assert views[key].dtype == arrays[key].dtype
                assert not views[key].flags.writeable
            assert block.meta == {"k": 3}
            shm.close()
        finally:
            assert segment.unlink() is True

    def test_offsets_are_aligned(self):
        arrays = {"x": np.ones(3), "y": np.ones(5), "z": np.ones(1)}
        block, segment = export_block("t", arrays, {})
        try:
            assert all(spec.offset % 64 == 0 for spec in block.arrays)
        finally:
            segment.unlink()

    def test_attached_engines_bitwise_identical(self, entry, serve_rows):
        bundle, segments = _export(entry)
        try:
            packed, bitvector, shms = attach_model_engines(bundle)
            expected = entry.model.predict_raw(serve_rows)
            np.testing.assert_array_equal(
                packed.predict_raw(serve_rows, use_cache=False), expected
            )
            np.testing.assert_array_equal(
                bitvector.predict_raw(serve_rows, use_cache=False), expected
            )
            assert packed.fingerprint == entry.fingerprint
            assert bitvector.fingerprint == entry.fingerprint
            for shm in shms:
                shm.close()
        finally:
            for segment in segments:
                segment.unlink()

    def test_install_shared_model_serves_predict(self, entry, serve_rows):
        bundle, segments = _export(entry)
        app = ServeApp()
        try:
            installed, shms = install_shared_model(app, bundle)
            assert installed.fingerprint == entry.fingerprint
            scores = installed.predict_raw(serve_rows[:16])
            np.testing.assert_array_equal(
                scores, entry.model.predict_raw(serve_rows[:16])
            )
        finally:
            app.close(drain=True)
            for segment in segments:
                segment.unlink()


class TestLifecycleHygiene:
    def test_live_segments_tracks_ownership(self, entry):
        before = set(live_segments())
        bundle, segments = _export(entry)
        names = {segment.name for segment in segments}
        assert names <= set(live_segments())
        for segment in segments:
            assert segment.unlink() is True
        assert set(live_segments()) == before

    def test_unlink_is_idempotent(self, entry):
        bundle, segments = _export(entry)
        for segment in segments:
            assert segment.unlink() is True
            assert segment.unlink() is False

    def test_attach_after_unlink_fails(self, entry):
        bundle, segments = _export(entry)
        for segment in segments:
            segment.unlink()
        with pytest.raises(FileNotFoundError):
            attach_block(bundle.packed)

    def test_export_uses_fresh_segment_names(self, entry):
        first, segments_a = _export(entry)
        second, segments_b = _export(entry)
        try:
            assert first.packed.segment != second.packed.segment
        finally:
            for segment in segments_a + segments_b:
                segment.unlink()

    def test_missing_engine_exports_none(self, serve_forest):
        bundle, segments = export_model("m", 1, 5, packed_for(serve_forest), None)
        try:
            assert bundle.bitvector is None
            packed, bitvector, shms = attach_model_engines(bundle)
            assert bitvector is None and packed is not None
            for shm in shms:
                shm.close()
        finally:
            for segment in segments:
                segment.unlink()
