"""End-to-end serving tests: HTTP endpoints, bitwise equality, one fit.

The HTTP tests run a real ``ThreadingHTTPServer`` on an OS-assigned port
and drive it with ``urllib`` from threaded clients; the error-mapping
tests call ``app.handle`` directly (the HTTP layer is a pass-through
adapter over it, exercised separately).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import GEFConfig
from repro.forest import forest_fingerprint, packed_for, save_forest
from repro.obs.metrics import (
    enable_metrics,
    get_metrics,
    validate_prometheus_text,
)
from repro.serve import ServeApp, ServeConfig, start_server

_GEF_SMALL = dict(
    n_univariate=3, n_samples=1_500, k_points=8, random_state=0
)


@pytest.fixture()
def app(serve_forest):
    app = ServeApp(
        ServeConfig(max_batch=8, batch_delay_s=0.002,
                    gef=GEFConfig(**_GEF_SMALL))
    )
    app.add_model("demo", serve_forest)
    yield app
    app.close(drain=True)


@pytest.fixture()
def server(app):
    handle = start_server(app)
    yield handle
    handle.close(drain=True)


def _post(url, payload, timeout=30.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


def test_healthz_reports_models(server, serve_forest):
    status, body = _get(server.url + "/healthz")
    payload = json.loads(body)
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["models"]["demo"]["fingerprint"] == forest_fingerprint(
        serve_forest
    )
    assert payload["models"]["demo"]["surrogate_cached"] is False


def test_metrics_endpoint_is_valid_prometheus(server, serve_rows):
    enable_metrics()
    _post(server.url + "/predict", {"rows": serve_rows[:2].tolist()})
    status, text = _get(server.url + "/metrics")
    assert status == 200
    assert "serve_requests_total" in text
    assert "serve_latency_s_bucket" in text
    assert validate_prometheus_text(text) > 0


def test_http_predict_bitwise_equals_packed_engine(server, serve_forest,
                                                  serve_rows):
    packed = packed_for(serve_forest)
    chunks = [serve_rows[i * 4 : i * 4 + 4] for i in range(12)]
    results: dict[int, list] = {}
    errors: list[Exception] = []
    barrier = threading.Barrier(12)

    def client(i):
        barrier.wait()
        try:
            status, payload = _post(
                server.url + "/predict", {"rows": chunks[i].tolist()}
            )
            assert status == 200
            results[i] = payload["predictions"]
        except Exception as exc:  # noqa: BLE001 - collected and asserted below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(12)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    assert not errors
    for i, chunk in enumerate(chunks):
        direct = packed.predict_raw(chunk, use_cache=False).tolist()
        assert results[i] == direct, (
            f"client {i}: HTTP predictions differ from the packed engine "
            f"(JSON floats round-trip exactly, so this is a real mismatch)"
        )


def test_concurrent_explain_fits_exactly_once(server):
    enable_metrics()
    outcomes: list[tuple[int, dict]] = []
    errors: list[Exception] = []
    barrier = threading.Barrier(4)

    def client():
        barrier.wait()
        try:
            outcomes.append(_post(server.url + "/explain", {}, timeout=120.0))
        except Exception as exc:  # noqa: BLE001 - collected and asserted below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, daemon=True) for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    assert not errors
    assert len(outcomes) == 4
    assert all(status == 200 for status, _ in outcomes)
    fingerprints = {payload["fingerprint"] for _, payload in outcomes}
    assert len(fingerprints) == 1
    assert get_metrics().counter("surrogate.fits") == 1, (
        "concurrent /explain must coalesce into exactly one GAM fit"
    )
    # The surrogate is cached now: another explain is a pure cache hit.
    status, _ = _post(server.url + "/explain", {})
    assert status == 200
    assert get_metrics().counter("surrogate.fits") == 1
    assert get_metrics().counter("surrogate.hits") >= 1


def test_explain_local_breakdown_and_gam_predict(server, app, serve_rows):
    instance = serve_rows[0]
    status, payload = _post(
        server.url + "/explain",
        {"instance": instance.tolist(), "top": 2},
        timeout=120.0,
    )
    assert status == 200
    assert payload["model"] == "demo"
    assert set(payload["fidelity"]) >= {"rmse", "r2"}
    local = payload["local"]
    assert len(local["contributions"]) == 2
    direct_local = app.surrogates.explanation_for(
        None, payload["fingerprint"]
    ).local_explanation(instance)
    assert local["eta"] == pytest.approx(
        direct_local.intercept
        + sum(c.contribution for c in direct_local.contributions),
        rel=1e-9,
    )
    status, gam = _post(
        server.url + "/gam/predict", {"rows": serve_rows[:3].tolist()}
    )
    assert status == 200
    explanation = app.surrogates.explanation_for(None, payload["fingerprint"])
    assert gam["predictions"] == explanation.predict(serve_rows[:3]).tolist()
    assert gam["source"] == "gam-surrogate"


def test_hot_add_and_remove_over_http(server, serve_forest, tmp_path):
    path = tmp_path / "second.json"
    save_forest(serve_forest, path)
    status, payload = _post(
        server.url + "/models", {"id": "second", "path": str(path)}
    )
    assert status == 200
    assert sorted(payload["models"]) == ["demo", "second"]
    status, body = _post(
        server.url + "/predict",
        {"model": "second", "rows": [[0.0] * serve_forest.n_features_]},
    )
    assert status == 200
    request = urllib.request.Request(
        server.url + "/models/second", method="DELETE"
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        removed = json.loads(response.read())
    assert removed["removed"] == "second"
    assert removed["models"] == ["demo"]


def test_http_error_statuses(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server.url + "/predict", {"rows": [[1.0]]})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server.url + "/predict", {"model": "ghost", "rows": [[1.0]]})
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server.url + "/no/such/route", {})
    assert err.value.code == 404


# ----------------------------------------------------------------------
# app-level behavior (no sockets needed)
# ----------------------------------------------------------------------
def test_bad_json_maps_to_400(app):
    response = app.handle("POST", "/predict", b"{not json")
    assert response.status == 400
    assert response.json()["kind"] == "bad-request"


def test_wrong_shape_maps_to_400(app):
    response = app.handle(
        "POST", "/predict", json.dumps({"rows": [[1.0, 2.0]]}).encode()
    )
    assert response.status == 400
    assert "columns" in response.json()["error"]


def test_admission_full_maps_to_429(serve_forest):
    enable_metrics()
    app = ServeApp(ServeConfig(max_inflight=1, gef=GEFConfig(**_GEF_SMALL)))
    app.add_model("demo", serve_forest)
    slot = app.admission.admit()  # occupy the only slot
    try:
        response = app.handle(
            "POST",
            "/predict",
            json.dumps(
                {"rows": [[0.0] * serve_forest.n_features_]}
            ).encode(),
        )
        assert response.status == 429
        assert response.json()["kind"] == "shed"
        assert get_metrics().counter("serve.shed") == 1
        # Monitoring endpoints bypass admission and still answer.
        assert app.handle("GET", "/healthz", None).status == 200
        assert app.handle("GET", "/metrics", None).status == 200
    finally:
        slot.__exit__(None, None, None)
        app.close(drain=True)


def test_exhausted_budget_maps_to_504(serve_forest):
    app = ServeApp(
        ServeConfig(request_timeout_s=0.0, gef=GEFConfig(**_GEF_SMALL))
    )
    app.add_model("demo", serve_forest)
    try:
        response = app.handle(
            "POST",
            "/predict",
            json.dumps(
                {"rows": [[0.0] * serve_forest.n_features_]}
            ).encode(),
        )
        assert response.status == 504
        assert response.json()["stage"] == "serve.predict"
    finally:
        app.close(drain=True)


def test_closed_app_sheds(app, serve_forest):
    app.close(drain=True)
    response = app.handle(
        "POST",
        "/predict",
        json.dumps({"rows": [[0.0] * serve_forest.n_features_]}).encode(),
    )
    assert response.status == 429
    assert app.handle("GET", "/healthz", None).json()["status"] == "draining"
