"""Fleet routing, parity, lifecycle, and the loadgen/benchmark plumbing.

One module-scoped fleet (2 workers, full replication) is shared by the
read-only tests; spawn cost is paid once.  Tests that mutate fleet state
(model add/remove) restore it before returning the fixture.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import FleetDegradedError, ModelNotFoundError
from repro.serve import FleetApp, FleetConfig, ServeConfig
from repro.serve.admission import Deadline
from repro.serve.fleet import HashRing
from repro.serve.shm import live_segments


@pytest.fixture(scope="module")
def fleet_app(serve_forest):
    app = FleetApp(
        ServeConfig(max_batch=16, queue_limit=4096),
        FleetConfig(workers=2, replication=2, quorum=1),
    )
    app.add_model("m", serve_forest)
    app.start_fleet()
    yield app
    app.close(drain=True)


def _predict_body(rows, model="m"):
    return json.dumps({"model": model, "rows": np.asarray(rows).tolist()})


class TestHashRing:
    def test_replicas_distinct_and_bounded(self):
        ring = HashRing([f"w{i}" for i in range(5)], vnodes=16)
        replicas = ring.replicas("model-a", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert ring.replicas("model-a", 10) == ring.replicas("model-a", 5)

    def test_assignment_is_stable_across_instances(self):
        a = HashRing(["w0", "w1", "w2"], vnodes=32)
        b = HashRing(["w0", "w1", "w2"], vnodes=32)
        for key in (0, 1, "fingerprint", 123456789):
            assert a.replicas(key, 2) == b.replicas(key, 2)

    def test_keys_spread_over_nodes(self):
        ring = HashRing([f"w{i}" for i in range(4)], vnodes=64)
        owners = {ring.replicas(k, 1)[0] for k in range(50)}
        assert len(owners) == 4

    def test_empty_ring(self):
        assert HashRing([], vnodes=4).replicas("x", 2) == []


class TestFleetServing:
    def test_predict_bitwise_identical_to_local(
        self, fleet_app, serve_rows
    ):
        response = fleet_app.handle(
            "POST", "/predict", _predict_body(serve_rows[:8])
        )
        assert response.status == 200
        expected = fleet_app.registry.get("m").predict_raw(serve_rows[:8])
        assert response.json()["predictions"] == expected.tolist()

    def test_dispatch_spreads_over_replicas(self, fleet_app, serve_rows):
        fleet = fleet_app.fleet
        deadline = Deadline(30.0)
        body = _predict_body(serve_rows[:2])
        for _ in range(4):
            response = fleet.dispatch("m", "POST", "/predict", body, deadline)
            assert response.status == 200
        # Round-robin over both replicas: the rotation counter advanced.
        assert fleet._rr[fleet_app.registry.get("m").fingerprint] >= 4

    def test_dispatch_unknown_model(self, fleet_app):
        with pytest.raises(ModelNotFoundError):
            fleet_app.fleet.dispatch(
                "ghost", "POST", "/predict", "{}", Deadline(5.0)
            )

    def test_healthz_reports_fleet(self, fleet_app):
        payload = fleet_app.handle("GET", "/healthz").json()
        fleet = payload["fleet"]
        assert fleet["state"] == "ok"
        assert set(fleet["workers"]) == {"w0", "w1"}
        assert all(w["state"] == "up" for w in fleet["workers"].values())
        assert fleet["models"]["m"]["assigned"]
        assert fleet["started"] is True and fleet["closed"] is False

    def test_bad_request_still_400_through_fleet(self, fleet_app):
        response = fleet_app.handle(
            "POST", "/predict", json.dumps({"model": "m"})
        )
        assert response.status == 400

    def test_worker_errors_surface_as_statuses(self, fleet_app):
        # Unknown model resolves on the front end (404 from _entry_for).
        response = fleet_app.handle(
            "POST", "/predict", _predict_body([[0.0] * 9], model="ghost")
        )
        assert response.status == 404


class TestFleetModels:
    def test_hot_swap_and_remove_unlink_segments(
        self, fleet_app, serve_forest, serve_rows
    ):
        before = set(live_segments())
        fleet_app.add_model("swap", serve_forest)
        mid = set(live_segments())
        assert len(mid) == len(before) + 2
        # Hot swap: same id, new segments, old ones unlinked.
        fleet_app.add_model("swap", serve_forest)
        after_swap = set(live_segments())
        assert len(after_swap) == len(mid)
        assert after_swap != mid
        response = fleet_app.handle(
            "POST", "/predict", _predict_body(serve_rows[:4], model="swap")
        )
        assert response.status == 200
        fleet_app.remove_model("swap")
        assert set(live_segments()) == before

    def test_assignment_respects_replication(self, fleet_app, serve_forest):
        fleet_app.add_model("solo", serve_forest, replicas=1)
        try:
            assert len(fleet_app.fleet.assignment("solo")) == 1
            assert len(fleet_app.fleet.assignment("m")) == 2
        finally:
            fleet_app.remove_model("solo")


class TestDegradedServing:
    def test_unstarted_fleet_serves_locally(self, serve_forest, serve_rows):
        # The module-scoped fleet_app may still own segments; compare
        # against a snapshot rather than demanding an empty set.
        before = set(live_segments())
        app = FleetApp(ServeConfig(), FleetConfig(workers=1))
        try:
            app.add_model("m", serve_forest)
            assert not app.fleet.active()
            response = app.handle(
                "POST", "/predict", _predict_body(serve_rows[:4])
            )
            assert response.status == 200
            expected = app.registry.get("m").predict_raw(serve_rows[:4])
            assert response.json()["predictions"] == expected.tolist()
        finally:
            app.close(drain=True)
        assert set(live_segments()) == before

    def test_dispatch_on_closed_fleet_is_typed(self, serve_forest):
        app = FleetApp(ServeConfig(), FleetConfig(workers=1))
        app.add_model("m", serve_forest)
        app.close(drain=True)
        with pytest.raises(FleetDegradedError):
            app.fleet.dispatch("m", "POST", "/predict", "{}", Deadline(5.0))
