"""AdmissionController and Deadline: caps, budgets, drain — no sleeping."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import ShedError, StageTimeoutError
from repro.obs.metrics import enable_metrics, get_metrics
from repro.obs.trace import advance
from repro.serve import AdmissionController, Deadline


def test_deadline_budget_on_pipeline_clock():
    deadline = Deadline(5.0)
    deadline.check("serve.predict")  # within budget: no raise
    assert deadline.remaining() == pytest.approx(5.0, abs=0.5)
    advance(6.0)
    assert deadline.elapsed() >= 6.0
    with pytest.raises(StageTimeoutError) as err:
        deadline.check("serve.predict")
    assert err.value.stage == "serve.predict"


def test_deadline_unbounded():
    deadline = Deadline(None)
    advance(100.0)
    assert deadline.remaining() is None
    deadline.check("serve.predict")  # never raises


def test_admission_caps_and_sheds_exactly():
    enable_metrics()
    controller = AdmissionController(max_inflight=3)
    admits = [controller.admit() for _ in range(3)]
    assert controller.inflight == 3
    for _ in range(4):
        with pytest.raises(ShedError):
            controller.admit()
    assert get_metrics().counter("serve.shed") == 4
    for admit in admits:
        admit.__exit__(None, None, None)
    assert controller.inflight == 0
    with controller.admit():
        assert controller.inflight == 1
    assert controller.inflight == 0


def test_drain_waits_for_releases():
    controller = AdmissionController(max_inflight=8)
    admits = [controller.admit() for _ in range(2)]
    done = threading.Event()

    def drainer():
        assert controller.drain(timeout_s=10.0)
        done.set()

    thread = threading.Thread(target=drainer, daemon=True)
    thread.start()
    assert not done.is_set()
    admits[0].__exit__(None, None, None)
    assert not done.wait(0.0)  # one request still in flight
    admits[1].__exit__(None, None, None)
    assert done.wait(10.0)
    thread.join(10.0)


def test_drain_timeout_reports_failure():
    controller = AdmissionController(max_inflight=8)
    with controller.admit():
        # A slot is still busy: a bounded drain must give up, not block.
        assert controller.drain(timeout_s=0.05) is False


def test_bad_constructor_arg():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
