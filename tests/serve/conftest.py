"""Serving test fixtures: clean observability state, shared small models.

No test under ``tests/serve`` may sleep on the wall clock: deadline and
batching behavior is driven deterministically through the pipeline clock
(:func:`repro.obs.trace.advance`) and explicit synchronization points
(:meth:`MicroBatcher.kick`, :meth:`MicroBatcher.wait_for_depth`,
``threading.Event``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_d_prime
from repro.forest import GradientBoostingRegressor
from repro.obs import clear_span_observers, disable_metrics, disable_tracing


@pytest.fixture(autouse=True)
def _serve_clean_slate():
    """Reset the global observability knobs around every serving test.

    The synthetic clock offset is deliberately left alone: it only ever
    grows (keeping the pipeline clock monotonic) and every consumer
    measures deltas.
    """
    disable_tracing()
    disable_metrics()
    clear_span_observers()
    yield
    disable_tracing()
    disable_metrics()
    clear_span_observers()


@pytest.fixture(scope="session")
def serve_data():
    """A small D' split reused by every serving test."""
    return make_d_prime(n=1_200, seed=7)


@pytest.fixture(scope="session")
def serve_forest(serve_data):
    """A 25-tree GBDT: big enough to batch, small enough to fit fast."""
    model = GradientBoostingRegressor(
        n_estimators=25, num_leaves=12, learning_rate=0.2, random_state=0
    )
    model.fit(serve_data.X_train, serve_data.y_train)
    return model


@pytest.fixture(scope="session")
def serve_rows(serve_data):
    """A deterministic pool of request rows (distinct from training)."""
    rng = np.random.default_rng(2024)
    idx = rng.permutation(len(serve_data.X_test))[:256]
    return np.ascontiguousarray(serve_data.X_test[idx])
