"""MicroBatcher: coalescing, deadlines, shedding, drain — no sleeping.

Deadline behavior is driven by :func:`repro.obs.trace.advance` (the
pipeline clock) plus :meth:`MicroBatcher.kick`; concurrency tests use
:meth:`MicroBatcher.wait_for_depth` and events as synchronization
points, so every assertion is deterministic.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import ServeError, ShedError
from repro.obs.metrics import enable_metrics
from repro.obs.trace import advance
from repro.serve import MicroBatcher


def _echo_predict(calls):
    """A predict_fn summing each row, recording every batch it sees."""

    def predict(X):
        calls.append(np.array(X, copy=True))
        return X.sum(axis=1)

    return predict


def _blocked_predict(started, release, calls):
    """A predict_fn that parks inside the packed call until released."""

    def predict(X):
        calls.append(np.array(X, copy=True))
        started.set()
        assert release.wait(10.0), "test forgot to release the batch"
        return X.sum(axis=1)

    return predict


def test_size_trigger_coalesces_concurrent_submits():
    calls: list[np.ndarray] = []
    started, release = threading.Event(), threading.Event()
    batcher = MicroBatcher(
        _blocked_predict(started, release, calls),
        max_batch=4,
        max_delay_s=60.0,
        name="size",
    )
    rows = np.arange(8.0).reshape(4, 2)
    results: dict[int, np.ndarray] = {}
    # One submit occupies the worker inside the (blocked) predict call;
    # it is below max_batch, so its flush is deadline-driven — expire the
    # window on the pipeline clock instead of sleeping through it.
    first = threading.Thread(
        target=lambda: results.setdefault(0, batcher.submit(rows[:1])),
        daemon=True,
    )
    first.start()
    assert batcher.wait_for_depth(1, timeout_s=10.0)
    advance(61.0)
    batcher.kick()
    assert started.wait(10.0)
    # ...so these four queue up behind it and must flush as ONE batch.
    threads = [
        threading.Thread(
            target=lambda i=i: results.setdefault(
                i, batcher.submit(rows[i - 1 : i])
            ),
            daemon=True,
        )
        for i in range(1, 5)
    ]
    for thread in threads:
        thread.start()
    assert batcher.wait_for_depth(5, timeout_s=10.0)
    started.clear()
    release.set()  # finish batch #1; worker then takes the size-due batch
    assert started.wait(10.0)
    release.set()
    first.join(10.0)
    for thread in threads:
        thread.join(10.0)
    assert sorted(results) == [0, 1, 2, 3, 4]
    assert [len(c) for c in calls] == [1, 4]
    for i in range(1, 5):
        np.testing.assert_array_equal(results[i], rows[i - 1 : i].sum(axis=1))
    batcher.stop()


def test_deadline_trigger_via_pipeline_clock():
    calls: list[np.ndarray] = []
    batcher = MicroBatcher(
        _echo_predict(calls), max_batch=64, max_delay_s=60.0, name="deadline"
    )
    done = threading.Event()
    out: list[np.ndarray] = []

    def client():
        out.append(batcher.submit(np.array([[1.0, 2.0]])))
        done.set()

    threading.Thread(target=client, daemon=True).start()
    assert batcher.wait_for_depth(1, timeout_s=10.0)
    # A single queued request, far below max_batch: only the deadline can
    # flush it.  Expire the 60 s window synthetically — nobody sleeps.
    advance(61.0)
    batcher.kick()
    assert done.wait(10.0)
    assert [len(c) for c in calls] == [1]
    np.testing.assert_array_equal(out[0], np.array([3.0]))
    batcher.stop()


def test_shed_count_is_deterministic_at_fixed_depth():
    enable_metrics()
    started, release = threading.Event(), threading.Event()
    calls: list[np.ndarray] = []
    batcher = MicroBatcher(
        _blocked_predict(started, release, calls),
        max_batch=1,
        max_delay_s=1e9,
        max_pending=3,
        name="shed",
    )
    row = np.array([[1.0, 1.0]])
    oks: list[np.ndarray] = []
    threads = [
        threading.Thread(
            target=lambda: oks.append(batcher.submit(row)), daemon=True
        )
        for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    assert batcher.wait_for_depth(3, timeout_s=10.0)
    # Exactly max_pending accepted and outstanding: each further submit
    # sheds synchronously, so the count is exact, not racy.
    for _ in range(5):
        with pytest.raises(ShedError):
            batcher.submit(row)
    from repro.obs.metrics import get_metrics

    assert get_metrics().counter("serve.shed") == 5
    release.set()
    for thread in threads:
        thread.join(10.0)
    assert len(oks) == 3
    batcher.stop()


def test_stop_drain_flushes_everything():
    calls: list[np.ndarray] = []
    started, release = threading.Event(), threading.Event()
    batcher = MicroBatcher(
        _blocked_predict(started, release, calls),
        max_batch=1,
        max_delay_s=1e9,
        name="drain",
    )
    results: list[np.ndarray] = []
    threads = [
        threading.Thread(
            target=lambda i=i: results.append(
                batcher.submit(np.array([[float(i), 0.0]]))
            ),
            daemon=True,
        )
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    assert batcher.wait_for_depth(4, timeout_s=10.0)
    release.set()
    batcher.stop(drain=True)  # must flush all 4 before returning
    for thread in threads:
        thread.join(10.0)
    assert len(results) == 4
    assert sum(len(c) for c in calls) == 4


def test_stop_no_drain_fails_queued_requests():
    started, release = threading.Event(), threading.Event()
    calls: list[np.ndarray] = []
    batcher = MicroBatcher(
        _blocked_predict(started, release, calls),
        max_batch=1,
        max_delay_s=1e9,
        name="abort",
    )
    errors: list[BaseException] = []
    oks: list[np.ndarray] = []

    def client(i):
        try:
            oks.append(batcher.submit(np.array([[float(i)]])))
        except ServeError as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(3)
    ]
    for thread in threads:
        thread.start()
    assert started.wait(10.0)  # one request inside predict
    assert batcher.wait_for_depth(3, timeout_s=10.0)
    stopper = threading.Thread(
        target=lambda: batcher.stop(drain=False), daemon=True
    )
    stopper.start()
    release.set()  # let the in-flight batch finish; the rest must fail
    stopper.join(10.0)
    for thread in threads:
        thread.join(10.0)
    assert len(oks) == 1
    assert len(errors) == 2
    assert all(isinstance(exc, ServeError) for exc in errors)
    # New submits against a stopped batcher are refused outright.
    with pytest.raises(ServeError):
        batcher.submit(np.array([[0.0]]))


def test_predict_error_propagates_to_every_submitter():
    def boom(X):
        raise ValueError("synthetic kernel fault")

    batcher = MicroBatcher(boom, max_batch=2, max_delay_s=60.0, name="boom")
    errors: list[BaseException] = []
    barrier = threading.Barrier(2)

    def client():
        barrier.wait()
        try:
            batcher.submit(np.array([[1.0]]))
        except ValueError as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, daemon=True) for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10.0)
    assert len(errors) == 2
    assert all("synthetic kernel fault" in str(e) for e in errors)
    # The worker survived the failed batch and keeps serving: a lone
    # follow-up request flushes once its deadline is expired synthetically.
    def ok(X):
        return X.sum(axis=1)

    batcher._predict_fn = ok
    out: list[np.ndarray] = []
    follow = threading.Thread(
        target=lambda: out.append(batcher.submit(np.array([[2.0, 3.0]]))),
        daemon=True,
    )
    follow.start()
    assert batcher.wait_for_depth(1, timeout_s=10.0)
    advance(61.0)
    batcher.kick()
    follow.join(10.0)
    np.testing.assert_array_equal(out[0], np.array([5.0]))
    batcher.stop()


def test_batched_scores_bitwise_equal_direct(serve_forest, serve_rows):
    from repro.forest import packed_for

    packed = packed_for(serve_forest)
    batcher = MicroBatcher(
        lambda X: packed.predict_raw(X, use_cache=False),
        max_batch=8,
        max_delay_s=1e9,
        name="exact",
    )
    chunks = [serve_rows[i * 8 : i * 8 + 8] for i in range(8)]
    results: dict[int, np.ndarray] = {}
    barrier = threading.Barrier(8)

    def client(i):
        barrier.wait()
        results[i] = batcher.submit(chunks[i])

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10.0)
    batcher.stop()
    for i, chunk in enumerate(chunks):
        direct = packed.predict_raw(chunk, use_cache=False)
        assert np.array_equal(results[i], direct), (
            f"client {i}: batched scores differ from direct evaluation"
        )
