"""Fleet chaos suite: crash-only failover, proven without a single sleep.

Synchronization contract (no wall-clock sleeps anywhere):

* :func:`kill_worker` returns only after the process is joined and the
  handle has run failover (``dead_event``) — detection state is settled.
* Restart due-times live on the pipeline clock; tests cross them with
  :func:`repro.obs.trace.advance` and drive detection with explicit
  ``Supervisor.tick()`` calls.
* ``_settle`` is a pipe-FIFO barrier: a chaos no-op round trip per
  worker guarantees every previously sent ping has been answered *and*
  the answer processed, so consecutive ticks can never count a false
  heartbeat miss against a healthy worker.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.devtools.faultinject import corrupt_heartbeat, hang_worker, kill_worker
from repro.devtools.loadgen import run_load
from repro.obs import enable_metrics
from repro.obs.metrics import get_metrics
from repro.obs.trace import advance
from repro.serve import FleetApp, FleetConfig, ServeConfig
from repro.serve.shm import live_segments
from repro.serve.supervisor import (
    STATE_FAILED,
    STATE_RESTARTING,
    STATE_UP,
)

#: Bound for event waits (process joins, ready barriers) — a ceiling for
#: hung tests, not a pacing sleep; the events fire as soon as the
#: condition holds.
WAIT_S = 60.0


def _settle(fleet, *names):
    """Pipe-FIFO barrier: all pings sent so far are answered & processed."""
    for name in names:
        fleet.chaos(name, "mute_pings", False)


def _predict(app, rows, model="m"):
    return app.handle(
        "POST",
        "/predict",
        json.dumps({"model": model, "rows": np.asarray(rows).tolist()}),
    )


def _build(serve_forest, **overrides):
    defaults = dict(
        workers=2, replication=2, quorum=2, backoff_base_s=1000.0
    )
    defaults.update(overrides)
    app = FleetApp(
        ServeConfig(max_batch=16, queue_limit=8192),
        FleetConfig(**defaults),
    )
    app.add_model("m", serve_forest)
    app.start_fleet()
    return app


def test_kill_failover_restart_recovery(serve_forest):
    """The acceptance scenario end to end, fully deterministic.

    SIGKILL a worker mid-load: zero requests lost beyond shed; the
    supervisor detects the crash, schedules an exponential-backoff
    restart on the pipeline clock, the slot recovers, ``/healthz``
    records the degraded→recovered transition — and after drain not one
    shared-memory segment is leaked.
    """
    enable_metrics()
    app = _build(serve_forest)
    fleet, sup = app.fleet, app.fleet.supervisor
    sup.tick()
    assert sup.state() == "ok"

    # --- kill mid-load: zero lost beyond shed -------------------------
    cell = run_load(
        app,
        clients=8,
        requests_per_client=8,
        rows_per_request=4,
        seed=3,
        mid_load=lambda: kill_worker(fleet, "w0"),
    )
    assert cell["errors"] == 0, cell
    assert cell["ok"] + cell["shed"] == cell["requests"]

    # --- detection: crash -> restarting with backoff ------------------
    _settle(fleet, "w1")
    sup.tick()
    assert sup.worker_state("w0") == STATE_RESTARTING
    assert sup.state() == "degraded"
    counters = get_metrics().snapshot()["counters"]
    assert counters.get("fleet.worker_crashes", 0) >= 1
    assert counters.get("fleet.degraded_transitions", 0) >= 1

    # Degraded serving: requests keep answering (replica or in-proc).
    response = _predict(app, np.zeros((2, app.registry.get("m").n_features)))
    assert response.status == 200

    # Backoff holds until the pipeline clock crosses the due time.
    _settle(fleet, "w1")
    sup.tick()
    assert sup.worker_state("w0") == STATE_RESTARTING

    # --- restart: advance the clock past the backoff ------------------
    advance(1001.0)
    _settle(fleet, "w1")
    sup.tick()
    assert fleet.await_ready("w0", WAIT_S)
    sup.tick()
    assert sup.worker_state("w0") == STATE_UP
    assert sup.state() == "ok"
    counters = get_metrics().snapshot()["counters"]
    assert counters.get("fleet.worker_restarts", 0) >= 1
    assert counters.get("fleet.recovered_transitions", 0) >= 1

    # --- /healthz carries the whole story -----------------------------
    payload = app.handle("GET", "/healthz").json()["fleet"]
    assert payload["state"] == "ok"
    assert payload["workers"]["w0"]["restarts"] == 1
    quorum_moves = [
        (t["from"], t["to"]) for t in payload["transitions"]
        if t["worker"] is None
    ]
    assert ("ok", "degraded") in quorum_moves
    assert ("degraded", "ok") in quorum_moves

    # Restarted worker serves bitwise-identical predictions.
    rows = np.asarray(
        np.random.default_rng(5).standard_normal(
            (4, app.registry.get("m").n_features)
        )
    )
    expected = app.registry.get("m").predict_raw(rows)
    assert _predict(app, rows).json()["predictions"] == expected.tolist()

    # --- drain: shared-memory hygiene ---------------------------------
    app.close(drain=True)
    assert live_segments() == []
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        mine = [
            name for name in os.listdir(shm_dir)
            if name.startswith(f"repro-fleet-{os.getpid()}-")
        ]
        assert mine == []


def test_hang_worker_escalates_to_kill(serve_forest):
    """A muted-heartbeat hang is detected by miss count and SIGKILLed."""
    app = _build(serve_forest, quorum=1, miss_threshold=2)
    fleet, sup = app.fleet, app.fleet.supervisor
    try:
        sup.tick()
        handle = fleet.handle("w1")
        with hang_worker(fleet, "w1"):
            # Each tick sends a ping w1 swallows; two unanswered pings
            # cross miss_threshold and the supervisor kills the worker.
            _settle(fleet, "w0")
            sup.tick()
            _settle(fleet, "w0")
            sup.tick()
            _settle(fleet, "w0")
            sup.tick()
        assert sup.worker_state("w1") == STATE_RESTARTING
        assert handle.dead_event.wait(WAIT_S)
        # The healthy worker keeps the fleet serving (quorum=1).
        assert sup.state() == "ok"
        assert sup.worker_state("w0") == STATE_UP
    finally:
        app.close(drain=True)
    assert live_segments() == []


def test_corrupt_heartbeat_counts_and_escalates(serve_forest):
    """Garbled pongs are counted as corrupt and never ack the sequence."""
    enable_metrics()
    app = _build(serve_forest, quorum=1, miss_threshold=2)
    fleet, sup = app.fleet, app.fleet.supervisor
    try:
        sup.tick()
        with corrupt_heartbeat(fleet, "w0"):
            sup.tick()
            # FIFO barrier: the corrupt pong for the tick above has been
            # received and classified before this ack returns.
            fleet.chaos("w0", "corrupt_pings", True)
            counters = get_metrics().snapshot()["counters"]
            assert counters.get("fleet.heartbeats_corrupt", 0) >= 1
            _settle(fleet, "w1")
            sup.tick()
            fleet.chaos("w0", "corrupt_pings", True)
            _settle(fleet, "w1")
            sup.tick()
        # Corrupt pongs never acknowledged the sequence: the miss
        # counter crossed the threshold and the worker went down the
        # one crash-only path.
        assert sup.worker_state("w0") == STATE_RESTARTING
        assert sup.state() == "ok"
    finally:
        app.close(drain=True)
    assert live_segments() == []


def test_restart_storm_opens_circuit_breaker(serve_forest):
    """More crashes than max_restarts parks the slot in ``failed``."""
    app = _build(
        serve_forest, workers=1, replication=1, quorum=1, max_restarts=0
    )
    fleet, sup = app.fleet, app.fleet.supervisor
    try:
        sup.tick()
        kill_worker(fleet, "w0")
        sup.tick()
        assert sup.worker_state("w0") == STATE_FAILED
        assert sup.state() == "degraded"
        # The breaker never schedules another spawn, however far the
        # clock advances.
        advance(10_000.0)
        sup.tick()
        assert sup.worker_state("w0") == STATE_FAILED
        # Degraded serving still answers in-process.
        response = _predict(
            app, np.zeros((1, app.registry.get("m").n_features))
        )
        assert response.status == 200
    finally:
        app.close(drain=True)
    assert live_segments() == []


def test_failover_responses_stay_bitwise_identical(serve_forest, serve_rows):
    """Replies during and after failover match local predict_raw exactly."""
    app = _build(serve_forest, quorum=1)
    try:
        app.fleet.supervisor.tick()
        expected = app.registry.get("m").predict_raw(serve_rows[:8])
        before = _predict(app, serve_rows[:8])
        assert before.json()["predictions"] == expected.tolist()
        kill_worker(app.fleet, "w0")
        after = _predict(app, serve_rows[:8])
        assert after.status == 200
        assert after.json()["predictions"] == expected.tolist()
    finally:
        app.close(drain=True)
    assert live_segments() == []
