"""The ledgered serving estate: write-through, rehydration, versioning
endpoints, SLO breach actions, and rollback under live traffic.

All in-process via ``app.handle`` (the HTTP layer is a pass-through
adapter exercised in test_server.py); zero wall-clock sleeps.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import GEFConfig, explain_config_hash
from repro.devtools.loadgen import run_load
from repro.forest import GradientBoostingRegressor, forest_fingerprint
from repro.ledger import LedgerStore
from repro.obs.metrics import enable_metrics, get_metrics
from repro.obs.slo import SloConfig, SloRule
from repro.serve import ServeApp, ServeConfig

_GEF_SMALL = dict(
    n_univariate=3, n_samples=1_500, k_points=8, random_state=0
)


@pytest.fixture(scope="session")
def serve_forest_v2(serve_data):
    """A structurally different forest to hot-swap over serve_forest."""
    model = GradientBoostingRegressor(
        n_estimators=30, num_leaves=10, learning_rate=0.15, random_state=3
    )
    model.fit(serve_data.X_train, serve_data.y_train)
    return model


def _ledgered_config(ledger_path, **kwargs):
    return ServeConfig(
        max_batch=8, batch_delay_s=0.002, gef=GEFConfig(**_GEF_SMALL),
        ledger_path=ledger_path, **kwargs,
    )


@pytest.fixture()
def ledger_app(tmp_path, serve_forest):
    path = tmp_path / "ledger"
    app = ServeApp(_ledgered_config(path))
    app.add_model("demo", serve_forest)
    yield app, path
    app.close(drain=True)


def _handle(app, method, path, payload=None):
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    response = app.handle(method, path, body)
    return response.status, json.loads(response.body)


class TestWriteThrough:
    def test_registration_ledgers_model_and_event(self, ledger_app,
                                                  serve_forest):
        app, path = ledger_app
        store = LedgerStore(path)
        fingerprint = forest_fingerprint(serve_forest)
        models = store.entries(kind="model", key=str(fingerprint))
        assert len(models) == 1
        assert models[0].payload["fingerprint"] == fingerprint
        events = store.entries(kind="event", key="demo")
        assert [e.payload["action"] for e in events] == ["register"]
        assert events[0].payload["fingerprint"] == fingerprint
        assert events[0].payload["model_entry"] == models[0].entry_id

    def test_hot_swap_ledgers_the_transition(self, ledger_app,
                                             serve_forest_v2):
        app, path = ledger_app
        app.add_model("demo", serve_forest_v2)
        events = LedgerStore(path).entries(kind="event", key="demo")
        assert [e.payload["action"] for e in events] == [
            "register", "hot-swap",
        ]
        assert events[1].payload["from_fingerprint"] == (
            events[0].payload["fingerprint"]
        )

    def test_explain_ledgers_surrogate_and_reports_coordinates(
        self, ledger_app, serve_forest
    ):
        app, path = ledger_app
        status, result = _handle(app, "POST", "/explain", {"model": "demo"})
        assert status == 200
        fingerprint = forest_fingerprint(serve_forest)
        assert result["fingerprint"] == fingerprint
        assert result["config_hash"] == explain_config_hash(app.config.gef)
        entries = LedgerStore(path).entries(kind="surrogate")
        assert len(entries) == 1
        assert result["ledger_entry"] == entries[0].entry_id
        assert entries[0].payload["fingerprint"] == fingerprint

    def test_healthz_reports_ledger(self, ledger_app):
        app, path = ledger_app
        status, payload = _handle(app, "GET", "/healthz")
        assert status == 200
        assert payload["ledger"]["path"] == str(path)
        assert payload["ledger"]["entries"] >= 2  # model + register event

    def test_write_through_emits_metrics(self, tmp_path, serve_forest):
        registry = enable_metrics()
        app = ServeApp(_ledgered_config(tmp_path / "ledger"))
        try:
            app.add_model("demo", serve_forest)
            counters = get_metrics().snapshot()["counters"]
            assert counters.get("ledger.appends", 0) >= 2
        finally:
            app.close(drain=True)


class TestRehydration:
    def test_restart_rehydrates_warm_surrogate_without_refit(
        self, tmp_path, serve_forest
    ):
        path = tmp_path / "ledger"
        first = ServeApp(_ledgered_config(path))
        first.add_model("demo", serve_forest)
        status, fitted = _handle(first, "POST", "/explain", {"model": "demo"})
        assert status == 200
        first.close(drain=True)

        second = ServeApp(_ledgered_config(path))
        second.add_model("demo", serve_forest)
        try:
            fingerprint = forest_fingerprint(serve_forest)
            # The cache is warm straight after registration: the fitted
            # surrogate came off the ledger, no explain ran in this app.
            assert second.surrogates.cached(fingerprint)
            assert second.surrogates.peek(fingerprint) is not None
            status, again = _handle(
                second, "POST", "/explain", {"model": "demo"}
            )
            assert status == 200
            assert again["fidelity"] == fitted["fidelity"]
            assert again["ledger_entry"] == fitted["ledger_entry"]
        finally:
            second.close(drain=True)

    def test_versioning_endpoints_refuse_without_ledger(self, serve_forest):
        app = ServeApp(
            ServeConfig(max_batch=8, gef=GEFConfig(**_GEF_SMALL))
        )
        app.add_model("demo", serve_forest)
        try:
            status, payload = _handle(app, "GET", "/models/demo/versions")
            assert status == 400
            assert "ledger" in payload["error"]
            status, _ = _handle(app, "POST", "/models/demo/rollback", {})
            assert status == 400
        finally:
            app.close(drain=True)


class TestVersioningEndpoints:
    def test_versions_lists_the_lineage(self, ledger_app, serve_forest,
                                        serve_forest_v2):
        app, _ = ledger_app
        app.add_model("demo", serve_forest_v2)
        status, payload = _handle(app, "GET", "/models/demo/versions")
        assert status == 200
        fp1 = forest_fingerprint(serve_forest)
        fp2 = forest_fingerprint(serve_forest_v2)
        assert payload["fingerprint"] == fp2
        assert [v["fingerprint"] for v in payload["versions"]] == [fp1, fp2]
        assert [v["action"] for v in payload["versions"]] == [
            "register", "hot-swap",
        ]
        assert set(payload["surrogates"]) == {str(fp1), str(fp2)}

    def test_unknown_ledger_route_is_404(self, ledger_app):
        app, _ = ledger_app
        status, _ = _handle(app, "GET", "/models/demo/nonsense")
        assert status == 404

    def test_diff_endpoint(self, ledger_app, serve_forest_v2):
        app, path = ledger_app
        _handle(app, "POST", "/explain", {"model": "demo"})
        app.add_model("demo", serve_forest_v2)
        _handle(app, "POST", "/explain", {"model": "demo"})
        entries = LedgerStore(path).entries(kind="surrogate")
        assert len(entries) == 2
        a, b = entries[0].entry_id, entries[1].entry_id
        status, report = _handle(app, "GET", f"/models/diff?a={a}&b={b}")
        assert status == 200
        assert report["identical_forest"] is False
        assert report["a"]["fingerprint"] != report["b"]["fingerprint"]

    def test_diff_needs_both_refs(self, ledger_app):
        app, _ = ledger_app
        status, payload = _handle(app, "GET", "/models/diff?a=abcdef")
        assert status == 400
        assert "exactly one" in payload["error"]

    def test_diff_rejects_non_surrogate_entries(self, ledger_app):
        app, path = ledger_app
        model_entry = LedgerStore(path).entries(kind="model")[0].entry_id
        status, _ = _handle(
            app, "GET", f"/models/diff?a={model_entry}&b={model_entry}"
        )
        assert status == 400


class TestRollback:
    def test_rollback_restores_previous_version_bitwise(
        self, ledger_app, serve_forest, serve_forest_v2
    ):
        app, path = ledger_app
        rows = np.random.default_rng(42).standard_normal(
            (6, serve_forest.n_features_)
        )
        baseline = serve_forest.predict_raw(rows).tolist()
        app.add_model("demo", serve_forest_v2)
        status, swapped = _handle(
            app, "POST", "/predict", {"model": "demo", "rows": rows.tolist()}
        )
        assert status == 200 and swapped["predictions"] != baseline

        status, result = _handle(app, "POST", "/models/demo/rollback", {})
        assert status == 200
        assert result["fingerprint"] == forest_fingerprint(serve_forest)
        assert result["from_fingerprint"] == forest_fingerprint(
            serve_forest_v2
        )
        status, restored = _handle(
            app, "POST", "/predict", {"model": "demo", "rows": rows.tolist()}
        )
        assert status == 200
        assert restored["predictions"] == baseline  # bitwise, not approx
        events = LedgerStore(path).entries(kind="event", key="demo")
        assert events[-1].payload["action"] == "rollback"

    def test_rollback_to_named_entry(self, ledger_app, serve_forest,
                                     serve_forest_v2):
        app, path = ledger_app
        app.add_model("demo", serve_forest_v2)
        target = LedgerStore(path).entries(
            kind="model", key=str(forest_fingerprint(serve_forest))
        )[0]
        status, result = _handle(
            app, "POST", "/models/demo/rollback", {"to": target.short_id}
        )
        assert status == 200
        assert result["fingerprint"] == forest_fingerprint(serve_forest)
        assert result["model_entry"] == target.entry_id

    def test_rollback_with_single_version_is_404(self, ledger_app):
        app, _ = ledger_app
        status, payload = _handle(app, "POST", "/models/demo/rollback", {})
        assert status == 404
        assert payload["kind"] == "ledger-entry-not-found"

    def test_rollback_under_load_loses_nothing(
        self, ledger_app, serve_forest, serve_forest_v2
    ):
        app, _ = ledger_app
        app.add_model("demo", serve_forest_v2)
        rollback_status = []

        def fire_rollback():
            status, _ = _handle(app, "POST", "/models/demo/rollback", {})
            rollback_status.append(status)

        cell = run_load(
            app, clients=6, requests_per_client=10, rows_per_request=4,
            seed=11, mid_load=fire_rollback,
        )
        assert rollback_status == [200]
        assert cell["ok"] + cell["shed"] == cell["requests"]  # lost == 0
        assert cell["errors"] == 0
        # Post-rollback traffic is served by v1, bit for bit.
        rows = np.random.default_rng(7).standard_normal(
            (5, serve_forest.n_features_)
        )
        status, result = _handle(
            app, "POST", "/predict", {"model": "demo", "rows": rows.tolist()}
        )
        assert status == 200
        assert result["fingerprint"] == forest_fingerprint(serve_forest)
        assert result["predictions"] == serve_forest.predict_raw(rows).tolist()


class TestSloBreachAction:
    def _slo_config(self, breach_action):
        return SloConfig(
            rules=(
                SloRule(
                    name="fidelity_floor", metric="fidelity", kind="min",
                    warn=0.9, breach=0.8,
                ),
            ),
            breach_action=breach_action,
        )

    def test_breach_transition_is_ledgered(self, tmp_path, serve_forest):
        app = ServeApp(_ledgered_config(
            tmp_path / "ledger", slo=self._slo_config("log")
        ))
        app.add_model("demo", serve_forest)
        try:
            assert app.slo.evaluate({"fidelity": 0.5}) == "breach"
            events = LedgerStore(tmp_path / "ledger").entries(
                kind="event", key="slo"
            )
            assert [e.payload["action"] for e in events] == [
                "slo-transition",
            ]
            assert events[0].payload["to"] == "breach"
            # log-only: the cache is untouched (nothing cached anyway),
            # and no invalidation event was written.
        finally:
            app.close(drain=True)

    def test_invalidate_action_drops_cached_surrogates(self, tmp_path,
                                                       serve_forest):
        app = ServeApp(_ledgered_config(
            tmp_path / "ledger", slo=self._slo_config("invalidate")
        ))
        app.add_model("demo", serve_forest)
        try:
            fingerprint = forest_fingerprint(serve_forest)
            status, _ = _handle(app, "POST", "/explain", {"model": "demo"})
            assert status == 200
            assert app.surrogates.cached(fingerprint)
            assert app.slo.evaluate({"fidelity": 0.5}) == "breach"
            assert not app.surrogates.cached(fingerprint)
            actions = [
                e.payload["action"]
                for e in LedgerStore(tmp_path / "ledger").entries(
                    kind="event", key="slo"
                )
            ]
            assert actions == ["slo-transition", "surrogate-invalidated"]
            # Recovery transitions ledger too, but do not invalidate.
            assert app.slo.evaluate({"fidelity": 0.95}) in ("breach", "ok")
        finally:
            app.close(drain=True)
