"""Fleet observability: SLO cycle, healthz supervision, merged traces.

The SLO chaos test drives the full ``ok -> warn -> breach -> recovered``
cycle on the synthetic clock: skew offsets are *computed* from the drift
reservoir (a constant offset ``c`` costs exactly ``n*c^2/ss_tot`` of R²)
so the fidelity lands in a chosen band deterministically — no sleeping,
no model corruption, no tuning by hand.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.config import GEFConfig
from repro.devtools.faultinject import skew_surrogate
from repro.obs import enable_metrics, enable_tracing
from repro.obs.metrics import validate_prometheus_text
from repro.obs.slo import LEVELS, default_slo_config
from repro.obs.summary import pid_breakdown
from repro.obs.trace import advance, validate_chrome_trace
from repro.serve import FleetApp, FleetConfig, ServeApp, ServeConfig

_GEF_SMALL = dict(
    n_univariate=3, n_samples=1_500, k_points=8, random_state=0
)


def _body(payload: dict) -> str:
    return json.dumps(payload)


# ----------------------------------------------------------------------
# SLO engine end to end (single-process app; the engine is identical
# under FleetApp — the fleet feeds the same drift reservoir)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def slo_app(serve_forest, serve_rows):
    """One app with the SLO plane on and a primed surrogate cache.

    Latency/error thresholds are parked far away so the fidelity rule is
    the only one in play; the GAM fit is paid once per module.
    """
    app = ServeApp(
        ServeConfig(
            max_batch=8,
            batch_delay_s=0.002,
            gef=GEFConfig(**_GEF_SMALL),
            slo=default_slo_config(
                fidelity_warn=0.6,
                fidelity_breach=0.3,
                p99_s=600.0,
                error_budget=0.9,
            ),
        )
    )
    app.add_model("demo", serve_forest)
    response = app.handle("POST", "/explain", _body({"model": "demo"}))
    assert response.status == 200, response.body
    response = app.handle(
        "POST",
        "/predict",
        _body({"model": "demo", "rows": serve_rows[:64].tolist()}),
    )
    assert response.status == 200, response.body
    yield app
    app.close(drain=True)


def _offset_for(app, target_fidelity: float) -> float:
    """The skew offset that lands fidelity exactly on ``target_fidelity``.

    With residuals ``r_i = approx_i - truth_i`` a constant offset ``c``
    gives ``ss_res(c) = ss_res0 + 2c*sum(r) + n*c^2`` — solve the
    quadratic for the ``c`` that pins R² to the target.
    """
    pairs = app.drift.samples()["demo"]
    rows = [row for row, _ in pairs]
    truth = [score for _, score in pairs]
    approx = app.surrogate_replay("demo", rows)
    n = len(truth)
    mean = sum(truth) / n
    ss_tot = sum((t - mean) ** 2 for t in truth)
    resid = [a - t for a, t in zip(approx, truth)]
    s = sum(resid)
    ss_res0 = sum(r * r for r in resid)
    constant = ss_res0 - (1.0 - target_fidelity) * ss_tot
    return (-s + math.sqrt(s * s - n * constant)) / n


class TestSloCycle:
    def test_ok_warn_breach_recovered_without_sleeping(self, slo_app):
        app = slo_app
        app.slo.reset()
        assert app.slo_tick() == "ok"
        base = app.drift.last()["fidelity"]
        assert base is not None and base > 0.6, (
            f"baseline surrogate fidelity {base} does not clear the warn "
            f"threshold; the cycle below would start degraded"
        )

        warn_offset = _offset_for(app, 0.45)     # in [0.3, 0.6)
        breach_offset = _offset_for(app, -0.5)   # well below 0.3
        with skew_surrogate(app, warn_offset):
            advance(5.0)
            assert app.slo_tick() == "warn"            # escalation: instant
        with skew_surrogate(app, breach_offset):
            advance(5.0)
            assert app.slo_tick() == "breach"
        # skew is gone; recover_after=2 holds the breach one tick
        advance(5.0)
        assert app.slo_tick() == "breach"
        advance(5.0)
        assert app.slo_tick() == "ok"

        view = app.slo.view()
        fidelity_shifts = [
            t for t in view["transitions"] if t["rule"] == "fidelity_floor"
        ]
        assert [t["to"] for t in fidelity_shifts] == ["warn", "breach", "ok"]
        assert fidelity_shifts[-1]["reason"] == "recovered"
        stamps = [t["at_s"] for t in fidelity_shifts]
        assert stamps == sorted(stamps) and stamps[0] < stamps[-1]

    def test_skew_restores_on_context_exit(self, slo_app):
        app = slo_app
        app.slo.reset()
        app.slo_tick()
        base = app.drift.last()["fidelity"]
        with skew_surrogate(app, _offset_for(app, -1.0)):
            pass
        app.slo_tick()
        assert app.drift.last()["fidelity"] == pytest.approx(base)

    def test_skew_requires_slo_enabled(self, serve_forest):
        app = ServeApp(ServeConfig())
        try:
            with pytest.raises(ValueError, match="SLO"):
                with skew_surrogate(app, 1.0):
                    pass
        finally:
            app.close(drain=True)

    def test_healthz_carries_slo_and_drift_blocks(self, slo_app):
        app = slo_app
        app.slo.reset()
        app.slo_tick()
        payload = json.loads(
            app.handle("GET", "/healthz").body.decode("utf-8")
        )
        block = payload["slo"]
        assert block["state"] in LEVELS
        assert set(block["rules"]) == {
            "fidelity_floor", "p99_latency", "error_budget"
        }
        assert block["rules"]["fidelity_floor"]["level"] == "ok"
        assert block["drift"]["fidelity"] == pytest.approx(
            app.drift.last()["fidelity"]
        )
        assert block["drift"]["models"]["demo"]["samples"] == 64

    def test_error_budget_rule_sees_counter_deltas(self, slo_app):
        app = slo_app
        app.slo.reset()
        enable_metrics()
        # every request in this window is a 404 -> error rate 1.0 beats
        # even the parked 0.9 budget
        for _ in range(8):
            assert app.handle("POST", "/predict", "not json").status == 400
        app.slo_tick()   # establishes the baseline window
        for _ in range(8):
            app.handle("GET", "/nope")
        state = app.slo_tick()
        values = app.slo.view()["rules"]["error_budget"]
        assert values["value"] is not None
        assert values["value"] == pytest.approx(0.0)   # 404s are not 5xx
        assert state == "ok"


# ----------------------------------------------------------------------
# fleet: supervision healthz, aggregated /metrics, merged traces
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_app(serve_forest):
    app = FleetApp(
        ServeConfig(max_batch=16, queue_limit=4096),
        FleetConfig(workers=2, replication=2, quorum=1),
    )
    app.add_model("m", serve_forest)
    app.start_fleet()
    yield app
    app.close(drain=True)


def _predict_body(rows, model="m"):
    return json.dumps({"model": model, "rows": np.asarray(rows).tolist()})


class TestFleetHealthz:
    def test_per_worker_uptime_and_transitions(self, fleet_app):
        payload = json.loads(
            fleet_app.handle("GET", "/healthz").body.decode("utf-8")
        )
        fleet = payload["fleet"]
        assert fleet["state"] == "ok"
        assert set(fleet["workers"]) == {"w0", "w1"}
        for name, entry in fleet["workers"].items():
            assert entry["state"] == "up"
            assert entry["restarts"] == 0
            assert entry["uptime_s"] is not None and entry["uptime_s"] >= 0.0
            # the per-worker slice contains only this worker's shifts,
            # ending in the boot transition to "up"
            assert entry["transitions"], name
            assert all(
                t["worker"] == name for t in entry["transitions"]
            )
            assert entry["transitions"][-1]["to"] == "up"
        # the fleet-wide log is still there for cross-worker forensics
        assert len(fleet["transitions"]) >= 2


class TestFleetMetrics:
    def test_scrape_appends_validated_fleet_series(self, fleet_app,
                                                   serve_rows):
        enable_metrics()
        before = fleet_app.fleet.aggregator.fleet_snapshot()["counters"].get(
            "predict.rows", 0.0
        )
        for i in range(4):
            response = fleet_app.handle(
                "POST", "/predict", _predict_body(serve_rows[i * 4:i * 4 + 4])
            )
            assert response.status == 200
        response = fleet_app.handle("GET", "/metrics")
        text = response.body.decode("utf-8")
        assert validate_prometheus_text(text) > 0
        assert "fleet_predict_rows_total" in text
        assert 'fleet_worker_predict_rows_total{worker="w0"}' in text
        # exact parity: the aggregated fleet counter grew by precisely
        # the rows this test dispatched (the scrape ran sync_obs)
        after = fleet_app.fleet.aggregator.fleet_snapshot()["counters"][
            "predict.rows"
        ]
        assert after - before == 16.0


class TestMergedTrace:
    def test_fleet_trace_merges_worker_lanes(self, serve_forest, serve_rows):
        enable_tracing()
        app = FleetApp(
            ServeConfig(max_batch=16, queue_limit=4096),
            FleetConfig(workers=2, replication=2, quorum=1),
        )
        try:
            app.add_model("m", serve_forest)
            app.start_fleet()
            for i in range(8):
                response = app.handle(
                    "POST",
                    "/predict",
                    _predict_body(serve_rows[i * 2:i * 2 + 2]),
                )
                assert response.status == 200
            assert app.fleet.sync_obs() == 2
            payload = app.fleet.merged_trace()
            assert validate_chrome_trace(payload) > 0
            events = payload["traceEvents"]
            pids = {e["pid"] for e in events}
            assert 1 in pids           # the front end's own lane
            assert len(pids) >= 2      # plus at least one worker lane
            # propagation: worker spans carry front-end trace ids, so
            # the merged trace stitches into end-to-end requests
            front_traces = {
                e["args"]["trace_id"] for e in events if e["pid"] == 1
            }
            stitched = [
                e for e in events
                if e["pid"] != 1 and e["args"]["trace_id"] in front_traces
            ]
            assert stitched
            # and the summary layer sees one lane per process
            lanes = pid_breakdown(payload)
            assert set(lanes) == pids
            assert all(lane["spans"] > 0 for lane in lanes.values())
        finally:
            app.close(drain=True)

    def test_worker_span_ids_never_collide(self, serve_forest, serve_rows):
        enable_tracing()
        app = FleetApp(
            ServeConfig(max_batch=16, queue_limit=4096),
            FleetConfig(workers=2, replication=2, quorum=1),
        )
        try:
            app.add_model("m", serve_forest)
            app.start_fleet()
            for i in range(6):
                app.handle(
                    "POST", "/predict", _predict_body(serve_rows[i:i + 1])
                )
            app.fleet.sync_obs()
            events = app.fleet.merged_trace()["traceEvents"]
            ids = [e["args"]["span_id"] for e in events]
            assert len(ids) == len(set(ids))
        finally:
            app.close(drain=True)
