"""SurrogateCache: singleflight, LRU eviction, failure propagation."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import ServeError
from repro.obs.metrics import enable_metrics, get_metrics
from repro.serve import SurrogateCache


class _CountingFit:
    """A fit_fn recording every invocation; optionally blocking."""

    def __init__(self, block: bool = False):
        self.calls: list[object] = []
        self.block = block
        self.started = threading.Event()
        self.release = threading.Event()
        self.lock = threading.Lock()

    def __call__(self, model):
        with self.lock:
            self.calls.append(model)
        if self.block:
            self.started.set()
            assert self.release.wait(10.0), "test forgot to release the fit"
        return ("fitted", model)


def test_hit_miss_and_counters():
    enable_metrics()
    fit = _CountingFit()
    cache = SurrogateCache(fit, capacity=4)
    first = cache.explanation_for("model-a", fingerprint=101)
    again = cache.explanation_for("model-a", fingerprint=101)
    assert first is again
    assert len(fit.calls) == 1
    metrics = get_metrics()
    assert metrics.counter("surrogate.fits") == 1
    assert metrics.counter("surrogate.misses") == 1
    assert metrics.counter("surrogate.hits") == 1


def test_singleflight_one_fit_under_concurrency():
    enable_metrics()
    fit = _CountingFit(block=True)
    cache = SurrogateCache(fit, capacity=4)
    results: list[object] = []
    leader = threading.Thread(
        target=lambda: results.append(
            cache.explanation_for("model-a", fingerprint=7)
        ),
        daemon=True,
    )
    leader.start()
    assert fit.started.wait(10.0)  # the leader is inside the fit
    waiters = [
        threading.Thread(
            target=lambda: results.append(
                cache.explanation_for("model-a", fingerprint=7, timeout_s=10.0)
            ),
            daemon=True,
        )
        for _ in range(6)
    ]
    for thread in waiters:
        thread.start()
    fit.release.set()
    leader.join(10.0)
    for thread in waiters:
        thread.join(10.0)
    assert len(results) == 7
    assert all(r is results[0] for r in results), "waiters got a different Γ"
    assert len(fit.calls) == 1, "singleflight ran more than one fit"
    assert get_metrics().counter("surrogate.fits") == 1


def test_lru_eviction_at_capacity():
    enable_metrics()
    fit = _CountingFit()
    cache = SurrogateCache(fit, capacity=2)
    cache.explanation_for("a", fingerprint=1)
    cache.explanation_for("b", fingerprint=2)
    cache.explanation_for("a", fingerprint=1)  # touch: 2 is now the LRU
    cache.explanation_for("c", fingerprint=3)  # evicts 2
    assert cache.cached(1) and cache.cached(3)
    assert not cache.cached(2)
    assert get_metrics().counter("surrogate.evictions") == 1
    # Re-requesting the evicted fingerprint refits.
    cache.explanation_for("b", fingerprint=2)
    assert len(fit.calls) == 4


def test_failed_fit_not_cached_and_propagates_to_waiters():
    class _FailingFit(_CountingFit):
        def __call__(self, model):
            super().__call__(model)
            raise ServeError("synthetic fit failure")

    fit = _FailingFit(block=True)
    cache = SurrogateCache(fit, capacity=4)
    outcomes: list[str] = []

    def leader_call():
        try:
            cache.explanation_for("m", fingerprint=9)
        except ServeError:
            outcomes.append("leader-error")

    def waiter_call():
        try:
            cache.explanation_for("m", fingerprint=9, timeout_s=10.0)
        except ServeError:
            outcomes.append("waiter-error")

    leader = threading.Thread(target=leader_call, daemon=True)
    leader.start()
    assert fit.started.wait(10.0)
    waiter = threading.Thread(target=waiter_call, daemon=True)
    waiter.start()
    fit.release.set()
    leader.join(10.0)
    waiter.join(10.0)
    assert sorted(outcomes) == ["leader-error", "waiter-error"]
    assert not cache.cached(9), "a failed fit must not be cached"
    # The next request starts a fresh flight (and fails again, honestly).
    fit.block = False
    with pytest.raises(ServeError):
        cache.explanation_for("m", fingerprint=9)
    assert len(fit.calls) == 2


def test_invalidate_and_clear():
    fit = _CountingFit()
    cache = SurrogateCache(fit, capacity=4)
    cache.explanation_for("a", fingerprint=1)
    cache.explanation_for("b", fingerprint=2)
    assert cache.invalidate(1)
    assert not cache.invalidate(1)
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.fingerprints() == []
