"""ModelRegistry: loading, fingerprints, hot add/remove/reload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelNotFoundError, ServeError
from repro.forest import (
    forest_fingerprint,
    load_forest,
    packed_for,
    save_forest,
)
from repro.serve import ModelRegistry


def test_add_in_memory_and_predict(serve_forest, serve_rows):
    registry = ModelRegistry()
    entry = registry.add("demo", serve_forest)
    assert entry.model_id == "demo"
    assert entry.fingerprint == forest_fingerprint(serve_forest)
    assert entry.n_features == serve_forest.n_features_
    assert "demo" in registry and len(registry) == 1
    direct = packed_for(serve_forest).predict_raw(serve_rows, use_cache=False)
    np.testing.assert_array_equal(entry.predict_raw(serve_rows), direct)


def test_add_from_file_shares_fingerprint(serve_forest, tmp_path):
    path = tmp_path / "model.json"
    save_forest(serve_forest, path)
    registry = ModelRegistry()
    entry = registry.add("disk", path)
    assert entry.path == path
    # Serialization round-trips the structure, so the structural identity
    # matches the in-memory original: surrogate fits would be shared.
    assert entry.fingerprint == forest_fingerprint(serve_forest)


def test_get_unknown_raises_with_known_ids(serve_forest):
    registry = ModelRegistry()
    registry.add("demo", serve_forest)
    with pytest.raises(ModelNotFoundError, match="demo"):
        registry.get("nope")


def test_remove_and_hot_swap(serve_forest, serve_data):
    registry = ModelRegistry()
    registry.add("m", serve_forest)
    from repro.forest import GradientBoostingRegressor

    other = GradientBoostingRegressor(
        n_estimators=5, num_leaves=4, random_state=1
    )
    other.fit(serve_data.X_train, serve_data.y_train)
    swapped = registry.add("m", other)  # hot swap under the same id
    assert len(registry) == 1
    assert swapped.fingerprint != forest_fingerprint(serve_forest)
    removed = registry.remove("m")
    assert removed.model_id == "m"
    with pytest.raises(ModelNotFoundError):
        registry.remove("m")


def test_reload_rereads_the_file(serve_forest, serve_data, tmp_path):
    path = tmp_path / "model.json"
    save_forest(serve_forest, path)
    registry = ModelRegistry()
    before = registry.add("m", path)
    from repro.forest import GradientBoostingRegressor

    other = GradientBoostingRegressor(
        n_estimators=5, num_leaves=4, random_state=1
    )
    other.fit(serve_data.X_train, serve_data.y_train)
    save_forest(other, path)  # atomic replace under the registry's feet
    after = registry.reload("m")
    assert after.fingerprint != before.fingerprint
    assert after.fingerprint == forest_fingerprint(load_forest(path))


def test_reload_in_memory_model_refuses(serve_forest):
    registry = ModelRegistry()
    registry.add("m", serve_forest)
    with pytest.raises(ServeError, match="in-memory"):
        registry.reload("m")


def test_unfitted_model_rejected():
    from repro.forest import GradientBoostingRegressor

    registry = ModelRegistry()
    with pytest.raises(ServeError, match="not a fitted"):
        registry.add("raw", GradientBoostingRegressor(n_estimators=3))
