"""Load generator: deterministic workloads, result schema, CI gate."""

from __future__ import annotations

import json

import pytest

from repro.core.config import GEFConfig
from repro.devtools.loadgen import bench_serve, run_load, validate_bench_serve
from repro.obs.metrics import enable_metrics
from repro.serve import ServeApp, ServeConfig


@pytest.fixture()
def app(serve_forest):
    app = ServeApp(
        ServeConfig(
            max_batch=8,
            batch_delay_s=0.001,
            gef=GEFConfig(n_univariate=3, n_samples=1_500, k_points=8),
        )
    )
    app.add_model("demo", serve_forest)
    yield app
    app.close(drain=True)


def test_run_load_accounts_for_every_request(app):
    enable_metrics()
    cell = run_load(
        app, clients=4, requests_per_client=6, rows_per_request=3, seed=1
    )
    assert cell["requests"] == 24
    assert cell["ok"] == 24
    assert cell["shed"] == 0 and cell["errors"] == 0
    assert cell["requests_per_sec"] > 0
    assert cell["p50_ms"] is not None and cell["p99_ms"] >= cell["p50_ms"]
    # Metrics were enabled, so the flush histogram delta is populated and
    # covers exactly the 24 requests of this run.
    assert sum(cell["batch_size_hist"].values()) >= 1


def test_run_load_same_seed_same_workload(app):
    # The workload (not the timing) is deterministic: equal seeds produce
    # equal request sets, so outcome counts match exactly.
    a = run_load(app, clients=3, requests_per_client=4, seed=9)
    b = run_load(app, clients=3, requests_per_client=4, seed=9)
    for key in ("requests", "ok", "shed", "errors", "clients"):
        assert a[key] == b[key]


def test_bench_serve_artifact_passes_its_own_schema():
    artifact = bench_serve(
        clients=4, requests_per_client=4, rows_per_request=2, n_trees=20
    )
    assert validate_bench_serve(artifact) == 2
    names = {cell["name"] for cell in artifact["cells"]}
    assert names == {"batch1", "microbatch"}
    for cell in artifact["cells"]:
        assert cell["errors"] == 0
        assert cell["requests_per_sec"] > 0
    # The artifact is JSON-serializable as written to BENCH_serve.json.
    json.loads(json.dumps(artifact))


def test_validate_bench_serve_rejects_malformed():
    with pytest.raises(ValueError, match="benchmark"):
        validate_bench_serve({"benchmark": "predict_raw"})
    good_cell = {
        "name": "batch1", "max_batch": 1, "transport": "inproc",
        "clients": 1, "requests": 2, "ok": 2, "shed": 0, "errors": 0,
        "seconds": 0.1, "requests_per_sec": 20.0, "p50_ms": 1.0,
        "p99_ms": 2.0, "batch_size_hist": {}, "speedup_vs_batch1": 1.0,
    }
    base = {
        "benchmark": "serve", "forest": {}, "python": "3",
        "numpy": "2", "cells": [good_cell],
    }
    assert validate_bench_serve(base) == 1
    broken = dict(base, cells=[dict(good_cell, ok=1)])
    with pytest.raises(ValueError, match="sum"):
        validate_bench_serve(broken)
    missing = dict(base, cells=[{k: v for k, v in good_cell.items()
                                 if k != "p99_ms"}])
    with pytest.raises(ValueError, match="p99_ms"):
        validate_bench_serve(missing)
    with pytest.raises(ValueError, match="batch1"):
        validate_bench_serve(
            dict(base, cells=[dict(good_cell, name="other")])
        )


def test_no_sleep_in_serve_tests():
    """The determinism contract: nothing under tests/serve sleeps."""
    from pathlib import Path

    banned = "time." + "sleep"  # split so this file passes its own scan
    for path in Path(__file__).parent.glob("*.py"):
        text = path.read_text()
        assert banned not in text, f"{path.name} calls {banned}"
